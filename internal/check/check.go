// Package check is the correctness harness for the simulator: a
// differential-execution and invariant-checking subsystem.
//
// Dynamic Sampling's premise is that the fast functional VM and the
// event-generating timing path execute the same guest program with
// identical architectural outcomes, and that snapshot/restore and
// replayed sessions reproduce runs bit-for-bit. This package proves
// those equivalences continuously instead of assuming them:
//
//   - Generate builds seeded random guest programs exercising branches,
//     paging, self-modifying code, syscalls, and device I/O;
//   - Lockstep runs one image through two machines — fast mode (nil
//     Sink) vs event-generating mode — in bounded chunks and compares
//     PC, registers, memory digest, devices, and vm.Stats at every sync
//     point, also validating the event stream against the internal
//     statistics;
//   - SnapshotRoundTrip snapshots mid-run, restores into a fresh
//     machine, resumes, and requires the final architectural state to
//     be identical to an uninterrupted run (and the snapshot itself to
//     be non-perturbing);
//   - ReplayDeterminism and ChunkAgreement require runs to be
//     reproducible and independent of how execution is partitioned
//     into Run calls;
//   - PolicyDeterminism replays full sampling sessions and requires
//     every policy (FullTiming, SMARTS, SimPoint, Dynamic) to produce
//     bit-identical Results.
//
// A reported Divergence carries the first differing field and a
// disassembled window around the PC where the runs disagreed, so a
// failure is directly actionable: re-run cmd/diffcheck with the same
// seed to reproduce it.
package check

import (
	"fmt"

	"repro/internal/vm"
)

// Options configures the differential checks.
type Options struct {
	// Chunk is the sync-point granularity in instructions (default 509;
	// deliberately prime and smaller than most loops so chunk
	// boundaries land mid-block and exercise the DBT resume path).
	Chunk uint64
	// MaxInstr bounds any single run; a generated program that has not
	// halted by then is reported as an error (default 2M).
	MaxInstr uint64
	// VM configures the machines under test. The zero value selects a
	// small span/TLB/TC configuration sized to the generated programs
	// so TLB conflicts and translation-cache flushes actually occur.
	VM vm.Config
	// CompareHostStats includes host-side bookkeeping statistics
	// (translation-cache and TLB counters) in lockstep and replay
	// comparisons. It defaults to true via DefaultOptions; fault-
	// injection tests disable it to demonstrate purely architectural
	// divergences.
	CompareHostStats bool
	// Hook, when non-nil, runs after every lockstep sync point. Tests
	// use it to inject faults into one machine and prove the differ
	// reports them.
	Hook func(step int, fast, event *vm.Machine)
}

// DefaultOptions returns the standard configuration for checking
// generated programs.
func DefaultOptions() Options {
	return Options{
		Chunk:            509,
		MaxInstr:         2 << 20,
		VM:               GenVMConfig(),
		CompareHostStats: true,
	}
}

func (o *Options) setDefaults() {
	if o.Chunk == 0 {
		o.Chunk = 509
	}
	if o.MaxInstr == 0 {
		o.MaxInstr = 2 << 20
	}
	if o.VM.MemSpan == 0 {
		o.VM = GenVMConfig()
	}
}

// Divergence reports the first disagreement a differential check found.
type Divergence struct {
	Check string // which check reported it
	Seed  uint64 // generator seed (0 when not from a generated program)
	Step  int    // sync-point index within the check
	Instr uint64 // instructions executed at the sync point
	Field string // first differing field
	A, B  string // rendered values from the two runs
	// Window is a disassembled window around the PC of the first run at
	// the divergence point.
	Window string
}

// Error implements error with a multi-line, actionable report.
func (d *Divergence) Error() string {
	return fmt.Sprintf(
		"check: %s divergence (seed=%d step=%d instr=%d)\n  field: %s\n  run A: %s\n  run B: %s\n%s",
		d.Check, d.Seed, d.Step, d.Instr, d.Field, d.A, d.B, d.Window)
}

// ProgramReport summarises a clean CheckProgram pass.
type ProgramReport struct {
	Seed   uint64
	Instr  uint64 // instructions the program executes to completion
	Checks []string
}

// CheckProgram generates the program for seed and runs every
// program-level differential check against it. It returns a nil
// Divergence and nil error when all checks pass.
func CheckProgram(seed uint64, o Options) (*ProgramReport, *Divergence, error) {
	o.setDefaults()
	prog := Generate(seed)
	rep := &ProgramReport{Seed: seed}

	div, instr, err := Lockstep(prog, o)
	if div != nil || err != nil {
		return nil, div, err
	}
	rep.Instr = instr
	rep.Checks = append(rep.Checks, "lockstep")

	if div, err := SnapshotRoundTrip(prog, o); div != nil || err != nil {
		return nil, div, err
	}
	rep.Checks = append(rep.Checks, "snapshot-roundtrip")

	if div, err := SerializedRoundTrip(prog, o); div != nil || err != nil {
		return nil, div, err
	}
	rep.Checks = append(rep.Checks, "serialized-roundtrip")

	if div, err := ReplayDeterminism(prog, o); div != nil || err != nil {
		return nil, div, err
	}
	rep.Checks = append(rep.Checks, "replay-determinism")

	if div, err := ChunkAgreement(prog, o, 3*o.Chunk+1); div != nil || err != nil {
		return nil, div, err
	}
	rep.Checks = append(rep.Checks, "chunk-agreement")

	return rep, nil, nil
}
