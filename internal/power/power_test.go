package power

import (
	"testing"

	"repro/internal/timing"
	"repro/internal/vm"
	"repro/internal/workload"
)

func runKernel(t *testing.T, kind workload.KernelKind, n uint64) *timing.Core {
	t.Helper()
	frag := workload.BuildFragment(kind, 0, workload.HotBase)
	img := workload.BuildKernelImage(frag, 512, 16, 8)
	m := vm.New(vm.Config{})
	m.Load(img)
	c := timing.NewCore(timing.DefaultConfig())
	m.Run(n, c)
	return c
}

func TestFreshMeterReadsZero(t *testing.T) {
	c := runKernel(t, workload.KALU, 100_000)
	meter := NewMeter(c, DefaultParams())
	// Meter was attached after the run: nothing new yet.
	if e := meter.Sample(); e.Instructions != 0 || e.TotalJ() != 0 {
		t.Fatalf("fresh meter must read zero, got %+v", e)
	}
}

func TestEnergyAccumulates(t *testing.T) {
	frag := workload.BuildFragment(workload.KALU, 0, workload.HotBase)
	img := workload.BuildKernelImage(frag, 512, 16, 8)
	m := vm.New(vm.Config{})
	m.Load(img)
	c := timing.NewCore(timing.DefaultConfig())
	meter := NewMeter(c, DefaultParams())
	m.Run(50_000, c)
	e := meter.Sample()
	if e.Instructions != 50_000 {
		t.Fatalf("instructions = %d", e.Instructions)
	}
	if e.DynamicJ <= 0 || e.StaticJ <= 0 || e.Seconds <= 0 {
		t.Fatalf("estimate %+v", e)
	}
	if e.AvgWatts() < 1 || e.AvgWatts() > 500 {
		t.Fatalf("implausible power %.1f W", e.AvgWatts())
	}
	// Second sample sees only the new work.
	m.Run(50_000, c)
	e2 := meter.Sample()
	if e2.Instructions != 50_000 {
		t.Fatalf("second sample %d", e2.Instructions)
	}
}

// TestMemoryKernelCostsMoreEnergyPerInstruction: memory-bound code pays
// DRAM access energy and long static integration per instruction.
func TestMemoryKernelCostsMoreEPI(t *testing.T) {
	aluM, vastM := meterOver(t, workload.KALU), meterOver(t, workload.KVast)
	if vastM.EPI() <= aluM.EPI()*1.5 {
		t.Fatalf("memory-bound EPI %.2f nJ should far exceed ALU %.2f nJ", vastM.EPI(), aluM.EPI())
	}
	// But its average power is lower (mostly waiting).
	if vastM.AvgWatts() >= aluM.AvgWatts() {
		t.Fatalf("memory-bound power %.1f W should be below ALU %.1f W",
			vastM.AvgWatts(), aluM.AvgWatts())
	}
}

func meterOver(t *testing.T, kind workload.KernelKind) Estimate {
	t.Helper()
	frag := workload.BuildFragment(kind, 0, workload.HotBase)
	img := workload.BuildKernelImage(frag, 512, 16, 8)
	m := vm.New(vm.Config{})
	m.Load(img)
	c := timing.NewCore(timing.DefaultConfig())
	m.Run(50_000, c) // warm
	meter := NewMeter(c, DefaultParams())
	m.Run(100_000, c)
	return meter.Sample()
}

func TestAccumulatorExtrapolation(t *testing.T) {
	var a Accumulator
	a.Functional(1000) // pending prefix
	a.Sample(Estimate{DynamicJ: 1e-6, StaticJ: 1e-6, Instructions: 1000, Cycles: 2000, Seconds: 1e-6})
	a.Functional(8000)
	est := a.Estimate(2.0)
	if est.Instructions != 10_000 {
		t.Fatalf("instructions = %d", est.Instructions)
	}
	// EPI constant: total = 10x the sampled energy.
	if got, want := est.TotalJ(), 10*2e-6; got < want*0.999 || got > want*1.001 {
		t.Fatalf("total = %v, want %v", got, want)
	}
	if est.Cycles != 20_000 {
		t.Fatalf("cycles = %d", est.Cycles)
	}
}

func TestZeroHandling(t *testing.T) {
	var a Accumulator
	a.Sample(Estimate{}) // ignored
	a.Functional(0)      // ignored
	if est := a.Estimate(2.0); est.TotalJ() != 0 || est.Instructions != 0 {
		t.Fatalf("empty accumulator %+v", est)
	}
	var e Estimate
	if e.AvgWatts() != 0 || e.EPI() != 0 {
		t.Fatal("zero estimate helpers must not divide by zero")
	}
}
