// Package power estimates energy and power from the timing simulator's
// activity counters — the third simulation dimension the paper's
// introduction calls out ("power simulation has also become important
// ... a functional simulation is in charge of providing events from CPU
// and devices, to which we can apply a power model").
//
// The model is an activity-based (Wattch-style) formulation: each
// retired instruction pays a per-class access energy, each cache/TLB
// access and miss pays an array energy, mispredictions pay a recovery
// energy, and a static power term integrates over cycles. The default
// parameters are order-of-magnitude figures for a 90 nm core of the
// paper's era; like the timing model, the value of the reproduction is
// in *relative* comparisons, not absolute watts.
package power

import (
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/timing"
)

// Params are the energy model coefficients. Energies are picojoules.
type Params struct {
	// Per-instruction base energy by class.
	PerClass [isa.NumClasses]float64
	// Array access energies.
	L1Access  float64
	L2Access  float64
	MemAccess float64
	TLBAccess float64
	// Misprediction recovery energy.
	Mispredict float64
	// Static (leakage + clock tree) power in watts.
	StaticWatts float64
	// Clock frequency, used to convert cycles to seconds.
	FreqGHz float64
}

// DefaultParams returns coefficients resembling a ~2 GHz, 90 nm core.
func DefaultParams() Params {
	p := Params{
		L1Access:    20,
		L2Access:    120,
		MemAccess:   2000,
		TLBAccess:   8,
		Mispredict:  300,
		StaticWatts: 12,
		FreqGHz:     2.0,
	}
	base := [isa.NumClasses]float64{}
	base[isa.ClassNop] = 50
	base[isa.ClassALU] = 100
	base[isa.ClassMul] = 250
	base[isa.ClassDiv] = 600
	base[isa.ClassLoad] = 150
	base[isa.ClassStore] = 150
	base[isa.ClassBranch] = 120
	base[isa.ClassJump] = 120
	base[isa.ClassFP] = 350
	base[isa.ClassFDiv] = 900
	base[isa.ClassSys] = 500
	base[isa.ClassHalt] = 50
	p.PerClass = base
	return p
}

// Estimate is an energy/power result.
type Estimate struct {
	// DynamicJ and StaticJ are the two energy components in joules.
	DynamicJ float64
	StaticJ  float64
	// Seconds is the modelled execution time.
	Seconds float64
	// Instructions and Cycles cover the estimated span.
	Instructions uint64
	Cycles       uint64
}

// TotalJ returns total energy in joules.
func (e Estimate) TotalJ() float64 { return e.DynamicJ + e.StaticJ }

// AvgWatts returns average power.
func (e Estimate) AvgWatts() float64 {
	if e.Seconds == 0 {
		return 0
	}
	return e.TotalJ() / e.Seconds
}

// EPI returns energy per instruction in nanojoules.
func (e Estimate) EPI() float64 {
	if e.Instructions == 0 {
		return 0
	}
	return e.TotalJ() / float64(e.Instructions) * 1e9
}

// Meter tracks a timing core's activity and converts deltas to energy.
type Meter struct {
	params Params
	core   *timing.Core
	last   snapshot
}

type snapshot struct {
	marker            timing.Marker
	byClass           [isa.NumClasses]uint64
	l1i, l1d, l2      cache.Stats
	itlb, dtlb, l2tlb cache.Stats
	mispredicts       uint64
}

// NewMeter attaches an energy meter to a core. The zero point is the
// core's current state.
func NewMeter(core *timing.Core, params Params) *Meter {
	m := &Meter{params: params, core: core}
	m.last = m.snap()
	return m
}

func (m *Meter) snap() snapshot {
	var s snapshot
	s.marker = m.core.Marker()
	s.byClass = m.core.ClassCounts()
	s.l1i, s.l1d, s.l2 = m.core.CacheStats()
	s.itlb, s.dtlb, s.l2tlb = m.core.TLBStats()
	s.mispredicts = m.core.Mispredicts()
	return s
}

// Sample returns the energy consumed since the previous Sample (or
// since the meter was attached) and advances the zero point.
func (m *Meter) Sample() Estimate {
	cur := m.snap()
	prev := m.last
	m.last = cur

	var est Estimate
	est.Instructions = cur.marker.Instrs - prev.marker.Instrs
	est.Cycles = cur.marker.Cycles - prev.marker.Cycles

	var pj float64
	for c := 0; c < isa.NumClasses; c++ {
		pj += m.params.PerClass[c] * float64(cur.byClass[c]-prev.byClass[c])
	}
	l1 := (cur.l1i.Accesses() - prev.l1i.Accesses()) + (cur.l1d.Accesses() - prev.l1d.Accesses())
	pj += m.params.L1Access * float64(l1)
	pj += m.params.L2Access * float64(cur.l2.Accesses()-prev.l2.Accesses())
	pj += m.params.MemAccess * float64(cur.l2.Misses-prev.l2.Misses)
	tlb := (cur.itlb.Accesses() - prev.itlb.Accesses()) +
		(cur.dtlb.Accesses() - prev.dtlb.Accesses()) +
		(cur.l2tlb.Accesses() - prev.l2tlb.Accesses())
	pj += m.params.TLBAccess * float64(tlb)
	pj += m.params.Mispredict * float64(cur.mispredicts-prev.mispredicts)
	est.DynamicJ = pj * 1e-12

	est.Seconds = float64(est.Cycles) / (m.params.FreqGHz * 1e9)
	est.StaticJ = m.params.StaticWatts * est.Seconds
	return est
}

// Accumulator combines interval estimates into a whole-run figure with
// the same extrapolation rule the IPC estimator uses: each sampled
// interval's energy-per-instruction stands in for the functional gap
// that follows it.
type Accumulator struct {
	totalJ   float64
	cycles   float64
	instrs   float64
	lastEPI  float64 // joules per instruction
	lastCPI  float64
	havePrev bool
	pending  float64
}

// Sample records a measured interval.
func (a *Accumulator) Sample(e Estimate) {
	if e.Instructions == 0 || e.Cycles == 0 {
		return
	}
	epi := e.TotalJ() / float64(e.Instructions)
	cpi := float64(e.Cycles) / float64(e.Instructions)
	if !a.havePrev && a.pending > 0 {
		a.totalJ += epi * a.pending
		a.cycles += cpi * a.pending
		a.instrs += a.pending
		a.pending = 0
	}
	a.lastEPI, a.lastCPI, a.havePrev = epi, cpi, true
	a.totalJ += e.TotalJ()
	a.cycles += float64(e.Cycles)
	a.instrs += float64(e.Instructions)
}

// Functional extrapolates over unmeasured instructions.
func (a *Accumulator) Functional(instr uint64) {
	if instr == 0 {
		return
	}
	if a.havePrev {
		a.totalJ += a.lastEPI * float64(instr)
		a.cycles += a.lastCPI * float64(instr)
		a.instrs += float64(instr)
	} else {
		a.pending += float64(instr)
	}
}

// Estimate returns the whole-run figure.
func (a *Accumulator) Estimate(freqGHz float64) Estimate {
	return Estimate{
		DynamicJ:     a.totalJ, // static already folded into interval totals
		Seconds:      a.cycles / (freqGHz * 1e9),
		Instructions: uint64(a.instrs),
		Cycles:       uint64(a.cycles),
	}
}
