// Command dynsim runs one benchmark of the synthetic SPEC CPU2000 suite
// under one sampling policy and reports the IPC estimate, sampling
// statistics, and modelled host cost.
//
// Usage:
//
//	dynsim -bench gzip -policy dynamic -metric CPU -sens 300 -interval 1 -maxfunc 0
//	dynsim -bench mcf  -policy smarts
//	dynsim -bench art  -policy simpoint -prof
//	dynsim -bench gcc  -policy full
//	dynsim -bench gzip -policy stratified -strata 6 -samples 48
//	dynsim -bench mcf  -policy rankedset -target 0.01 -budget 400
//
// The stratified and rankedset policies report their CPI estimate with
// a confidence interval ("CPI ± halfwidth"); -target switches them to
// error-targeting mode, refining until the interval's relative
// half-width drops below the target or -budget is exhausted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hostcost"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/simpoint"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark name (see cmd/spectable for the suite)")
	policy := flag.String("policy", "dynamic", "full | smarts | simpoint | dynamic | stratified | rankedset")
	metric := flag.String("metric", "CPU", "dynamic sampling monitored variable: CPU, EXC, or I/O")
	sens := flag.Float64("sens", 300, "dynamic sampling sensitivity (percent)")
	intervalMul := flag.Uint64("interval", 1, "interval length multiplier (1=1M, 10=10M, 100=100M)")
	maxFunc := flag.Int("maxfunc", 0, "max consecutive functional intervals (0 = unlimited)")
	prof := flag.Bool("prof", false, "simpoint: charge the profiling pass (SimPoint+prof)")
	strata := flag.Int("strata", 0, "stratified: number of proxy strata (0 = default 6)")
	samples := flag.Int("samples", 0, "stratified: detailed-timing samples across strata (0 = default 48)")
	setSize := flag.Int("setsize", 0, "rankedset: candidates ranked per set (0 = default 4)")
	cycles := flag.Int("cycles", 0, "rankedset: balanced measurement cycles (0 = default 12)")
	target := flag.Float64("target", 0, "stratified/rankedset: refine until the CPI interval's relative half-width is below this fraction, e.g. 0.01 = ±1% (0 = fixed design)")
	budget := flag.Int("budget", 0, "measurement budget for -target: samples (stratified) or cycles (rankedset); 0 = policy default")
	conf := flag.Float64("conf", 0, "stratified/rankedset: confidence level of the CPI interval (0 = default 0.95)")
	statSeed := flag.Uint64("seed", 17, "stratified/rankedset: sampling seed")
	scale := flag.Int("scale", 2000, "workload scale divisor")
	baseline := flag.Bool("baseline", false, "also run full timing and report error/speedup")
	ckptDir := flag.String("ckpt-dir", "", "persist checkpoints to this directory (warm-starts later runs)")
	ckptStride := flag.Uint64("ckpt-stride", 0, "checkpoint deposit stride in base intervals (0 = auto)")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none)")
	faultSeed := flag.Uint64("faults", 0, "inject deterministic disk faults into the checkpoint store with this seed (0 = off; needs -ckpt-dir)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus), /metrics.json and /transitions on this address (e.g. 127.0.0.1:9090)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
		}
	}()

	spec, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsim:", err)
		os.Exit(1)
	}

	var p sampling.Policy
	switch *policy {
	case "full":
		p = sampling.FullTiming{}
	case "smarts":
		p = sampling.DefaultSMARTS(spec.ScaledInstr(*scale))
	case "simpoint":
		p = simpoint.New(*prof)
	case "dynamic":
		m, err := vm.ParseMetric(*metric)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
		p = sampling.NewDynamic(m, *sens, *intervalMul, *maxFunc)
	case "stratified":
		sp := sampling.NewStratified(*statSeed)
		if *strata != 0 {
			sp.Strata = *strata
		}
		if *samples != 0 {
			sp.Samples = *samples
		}
		if *conf != 0 {
			sp.Confidence = *conf
		}
		if *target != 0 {
			sp = sp.WithTarget(*target, *budget)
		}
		p = sp
	case "rankedset":
		rp := sampling.NewRankedSet(*statSeed)
		if *setSize != 0 {
			rp.SetSize = *setSize
		}
		if *cycles != 0 {
			rp.Cycles = *cycles
		}
		if *conf != 0 {
			rp.Confidence = *conf
		}
		if *target != 0 {
			rp = rp.WithTarget(*target, *budget)
		}
		p = rp
	default:
		fmt.Fprintf(os.Stderr, "dynsim: unknown policy %q\n", *policy)
		os.Exit(1)
	}

	opts := core.Options{Scale: *scale, CkptStride: *ckptStride}

	// Observability is opt-in and inert: results are bit-identical with
	// or without it (check.ObsInvariance pins this).
	var reg *obs.Registry
	var trace *obs.TransitionTrace
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		trace = obs.NewTransitionTrace(obs.DefaultTraceCap)
		obs.PublishExpvar(reg)
		srv, err := obs.Serve(*metricsAddr, reg, trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dynsim: serving metrics on http://%s/metrics\n", srv.Addr())
		opts.Obs = reg
		opts.Trace = trace
	}

	var store *ckpt.Store
	if *ckptDir != "" {
		ckptOpts := ckpt.Options{Dir: *ckptDir, Obs: reg}
		if *faultSeed != 0 {
			ckptOpts.Faults = faults.New(*faultSeed, faults.DefaultPlan())
		}
		store, err = ckpt.New(ckptOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
		opts.Ckpt = store
	}

	// Ctrl-C, SIGTERM, or the -timeout deadline abort the run with a
	// nonzero exit instead of leaving a wedged process. The simulation
	// itself is synchronous, so it runs in a child goroutine and the
	// main goroutine waits on whichever finishes first.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The session checks the context at every Run-call boundary, so a
	// signal or deadline stops the simulation itself promptly rather
	// than only abandoning the goroutine.
	opts.Context = ctx

	s := core.NewSession(spec, opts)
	type outcome struct {
		res sampling.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := p.Run(s)
		ch <- outcome{res, err}
	}()
	var res sampling.Result
	select {
	case o := <-ch:
		res, err = o.res, o.err
		if err == nil && s.Interrupted() != nil {
			// The run lost the race: it observed the cancelled context
			// and returned a partial result before the select did.
			fmt.Fprintln(os.Stderr, "dynsim: interrupted")
			os.Exit(130)
		}
	case <-ctx.Done():
		if ctx.Err() == context.DeadlineExceeded {
			fmt.Fprintf(os.Stderr, "dynsim: run exceeded -timeout %v\n", *timeout)
		} else {
			fmt.Fprintln(os.Stderr, "dynsim: interrupted")
		}
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark      %s (ref input %s)\n", spec.Name, spec.RefInput)
	fmt.Printf("policy         %s\n", res.Policy)
	fmt.Printf("instructions   %d (paper budget %d G / scale %d)\n", res.Instructions, spec.PaperGInstr, *scale)
	fmt.Printf("estimated IPC  %.4f\n", res.EstIPC)
	if iv := res.CPIInterval; iv != nil {
		fmt.Printf("CPI estimate   %.4f ± %.4f (±%.1f%% at %.0f%% confidence)\n",
			iv.Point, iv.HalfWidth(), iv.RelHalfWidth()*100, iv.Confidence*100)
		if *target != 0 {
			fmt.Printf("error target   ±%.3g%%: met=%v\n", *target*100, res.TargetMet)
		}
	}
	fmt.Printf("timing samples %d\n", res.Samples)
	fmt.Printf("modelled time  %s (paper-equivalent %s)\n",
		hostcost.FormatDuration(res.Cost.Seconds),
		hostcost.FormatDuration(res.Cost.PaperSeconds))

	if *baseline && res.Policy != "Full timing" {
		sb := core.NewSession(spec, opts)
		base, err := sampling.FullTiming{}.Run(sb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
		fmt.Printf("full-timing IPC %.4f (%s paper-equivalent)\n",
			base.EstIPC, hostcost.FormatDuration(base.Cost.PaperSeconds))
		fmt.Printf("accuracy error %.2f%%\n", res.ErrorVs(base)*100)
		fmt.Printf("speedup        %.1fx\n", res.Speedup(base))
	}

	if store != nil {
		fmt.Printf("checkpoints    %s\n", store.Stats())
	}
}
