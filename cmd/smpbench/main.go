// Command smpbench measures the wall-clock speedup of the parallel SMP
// schedule (one host goroutine per guest per quantum, deterministic
// barrier rendezvous) over the sequential round-robin reference, and
// emits the BENCH_*.json schema directly so bench files are never
// hand-assembled.
//
// Both schedules run the same freshly built guest images to completion;
// throughput is reported in MIPS (million guest instructions per host
// second) summed over all guests. The parallel leg is timed first so a
// warmed page cache or branch predictor cannot flatter it.
//
// With -min-speedup S the tool becomes a CI guard: it fails (exit 1)
// if the parallel schedule is slower than S times sequential. Like the
// sweep smoke test, the guard only arms on hosts with at least as many
// CPUs as guests — on a starved runner the parallel schedule degrades
// to sequential plus barrier overhead, which is exactly the case the
// equivalence harness (diffcheck -smp) covers for correctness — and
// reports itself skipped otherwise.
//
// Usage:
//
//	smpbench [-guests 4] [-scale 20000] [-mode fast|timed] [-quantum Q]
//	         [-runs 3] [-o BENCH.json] [-json] [-min-speedup 1.5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/smp"
	"repro/internal/workload"
)

// pool is the guest workload mix, cycled to fill a system.
var pool = []string{"gzip", "mcf", "swim", "perlbmk", "twolf", "art", "bzip2", "equake"}

type leg struct {
	Seconds float64 `json:"seconds"`
	MIPS    float64 `json:"minstr_s"`
}

type report struct {
	Date       string  `json:"date"`
	GoMaxProcs int     `json:"go_maxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Guests     int     `json:"guests"`
	Scale      int     `json:"scale"`
	Mode       string  `json:"mode"`
	Quantum    uint64  `json:"quantum"`
	Runs       int     `json:"runs_best_of"`
	Sequential leg     `json:"sequential"`
	Parallel   leg     `json:"parallel"`
	Speedup    float64 `json:"speedup"`
	// GuardArmed records whether -min-speedup was enforced; false on
	// hosts with fewer CPUs than guests, where the bound is meaningless.
	GuardArmed bool    `json:"guard_armed"`
	MinSpeedup float64 `json:"min_speedup"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smpbench:", err)
	os.Exit(1)
}

// build assembles a fresh system of n guests from the workload pool.
func build(n, scale int, sequential bool, quantum uint64) (*smp.System, uint64) {
	sys := smp.New(smp.Config{Sequential: sequential, Quantum: quantum})
	var total uint64
	for i := 0; i < n; i++ {
		name := pool[i%len(pool)]
		spec, err := workload.ByName(name)
		if err != nil {
			fatal(err)
		}
		img, _ := workload.BuildScaled(spec, scale)
		budget := spec.ScaledInstr(scale)
		sys.AddGuest(fmt.Sprintf("%s#%d", name, i), img, budget)
		total += budget
	}
	return sys, total
}

// measure runs one fresh system to completion and returns the elapsed
// wall-clock time plus total guest instructions executed.
func measure(n, scale int, sequential bool, quantum uint64, timed bool) (time.Duration, uint64) {
	sys, _ := build(n, scale, sequential, quantum)
	start := time.Now()
	for !sys.Done() {
		if timed {
			sys.RunTimed(1 << 20)
		} else {
			sys.RunFast(1 << 20)
		}
	}
	elapsed := time.Since(start)
	var executed uint64
	for _, g := range sys.Guests() {
		executed += g.Executed()
	}
	return elapsed, executed
}

func bestOf(runs int, f func() (time.Duration, uint64)) leg {
	best := leg{Seconds: -1}
	for i := 0; i < runs; i++ {
		d, executed := f()
		if best.Seconds < 0 || d.Seconds() < best.Seconds {
			best = leg{
				Seconds: d.Seconds(),
				MIPS:    float64(executed) / d.Seconds() / 1e6,
			}
		}
	}
	return best
}

func main() {
	guests := flag.Int("guests", 4, "number of guests in the system")
	scale := flag.Int("scale", 20_000, "workload scale divisor")
	mode := flag.String("mode", "fast", "execution mode: fast|timed")
	quantum := flag.Uint64("quantum", 0, "rendezvous quantum in instructions (0 = default)")
	runs := flag.Int("runs", 3, "measurements per schedule (best is reported)")
	out := flag.String("o", "BENCH.json", "output JSON path (\"-\" = stdout)")
	asJSON := flag.Bool("json", false, "also print the report JSON to stdout")
	minSpeedup := flag.Float64("min-speedup", 0, "fail if parallel speedup falls below this (0 = off; only armed with NumCPU >= guests)")
	flag.Parse()

	timed := false
	switch *mode {
	case "fast":
	case "timed":
		timed = true
	default:
		fatal(fmt.Errorf("unknown -mode %q (want fast|timed)", *mode))
	}

	rep := report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Guests:     *guests,
		Scale:      *scale,
		Mode:       *mode,
		Quantum:    *quantum,
		Runs:       *runs,
		MinSpeedup: *minSpeedup,
	}

	// Parallel first so warm caches cannot flatter it.
	rep.Parallel = bestOf(*runs, func() (time.Duration, uint64) {
		return measure(*guests, *scale, false, *quantum, timed)
	})
	rep.Sequential = bestOf(*runs, func() (time.Duration, uint64) {
		return measure(*guests, *scale, true, *quantum, timed)
	})
	rep.Speedup = rep.Sequential.Seconds / rep.Parallel.Seconds
	rep.GuardArmed = *minSpeedup > 0 &&
		rep.GoMaxProcs >= *guests && rep.NumCPU >= *guests

	fmt.Printf("smpbench: %d guests, %s mode, scale %d, GOMAXPROCS %d\n",
		rep.Guests, rep.Mode, rep.Scale, rep.GoMaxProcs)
	fmt.Printf("  sequential: %8.3fs  %8.2f Minstr/s\n", rep.Sequential.Seconds, rep.Sequential.MIPS)
	fmt.Printf("  parallel:   %8.3fs  %8.2f Minstr/s\n", rep.Parallel.Seconds, rep.Parallel.MIPS)
	fmt.Printf("  speedup:    %.2fx\n", rep.Speedup)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	if *asJSON && *out != "-" {
		os.Stdout.Write(raw)
	}

	if *minSpeedup > 0 {
		if !rep.GuardArmed {
			fmt.Printf("smpbench: speedup guard skipped (need %d CPUs, have GOMAXPROCS %d / NumCPU %d)\n",
				*guests, rep.GoMaxProcs, rep.NumCPU)
			return
		}
		if rep.Speedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "smpbench: speedup %.2fx below the %.2fx bound\n", rep.Speedup, *minSpeedup)
			os.Exit(1)
		}
		fmt.Printf("smpbench: speedup guard ok (%.2fx >= %.2fx)\n", rep.Speedup, *minSpeedup)
	}
}
