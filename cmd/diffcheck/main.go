// Command diffcheck runs the differential-execution and invariant
// checks in internal/check against seeded random guest programs and
// against the sampling policies.
//
// Usage:
//
//	diffcheck [-seed N] [-n COUNT] [-chunk C] [-mode MODE] [-scale S] [-bench LIST] [-v]
//
// Modes:
//
//	all        every program-level check per seed, then policy determinism
//	lockstep   fast-mode vs event-mode lockstep differencing only
//	snapshot   snapshot/restore round-trip check only
//	serialize  serialized (WriteTo/ReadSnapshot) round-trip check only
//	replay     same-partitioning replay determinism only
//	chunks     chunk-partitioning agreement only
//	policies   sampling-policy determinism only (no generated programs)
//
// The -ckpt flag additionally replays every policy with the checkpoint
// store off, cold, and warmed, requiring bit-identical results each
// time (the cache-equivalence check).
//
// The -batch flag additionally runs the batch-invariance checks: each
// generated program is re-run per event-batch capacity in
// check.BatchSizes against a per-event-delivery reference, and every
// sampling policy is replayed across the same capacities, all required
// to be bit-identical (the batched event pipeline must be invisible).
//
// The -faults flag additionally runs the fault-equivalence check: the
// experiment runner is driven under several seeded fault-injection
// schedules (disk I/O errors, torn and corrupted checkpoints,
// measurement panics, hangs, and transient errors) and its rendered
// artifacts must be byte-identical to a fault-free run.
//
// The -chaos flag additionally runs the chaos-schedule exploration:
// -chaos-schedules seeded fault schedules (worker kills at arbitrary
// deliveries, coordinator SIGKILL/restart at arbitrary write-ahead-log
// offsets with torn WAL tails, network and disk faults), each a full
// distributed sweep whose merged journal must render artifacts
// byte-identical to a sequential fault-free run with exactly-once
// completion accounting and kill-bounded re-execution.
//
// The -smp flag additionally runs the SMP scheduler-equivalence check:
// for every guest count, rendezvous quantum (including quantum 1), and
// GOMAXPROCS setting in the matrix, the parallel goroutine-per-guest
// barrier schedule must produce byte-identical statistics, core
// snapshots (including shared-L2 replacement state), interval IPCs,
// Dynamic Sampling estimates, and rendered reports to the sequential
// round-robin reference schedule. -smp-procs narrows the GOMAXPROCS
// matrix (comma-separated) so CI can shard it.
//
// The -obs flag additionally runs the observability-invariance checks:
// every policy is replayed with a metrics registry and transition trace
// attached and must produce bit-identical results, and the full
// artifact bundle is rendered with and without instrumentation and must
// be byte-identical (the obs layer must be inert).
//
// The -stats flag additionally runs the statistical-validity check:
// the Stratified and RankedSet policies are swept across seeds against
// full-timing ground truth and must deliver the empirical interval
// coverage they claim, seed-deterministic journal-stable results, and
// an error-targeting mode that honours its budget and width contract.
// -stats-runs scales the sweep (seeded runs per policy per benchmark).
//
// Program checks run seeds seed..seed+n-1. Any divergence is reported
// with the first differing field and a disassembled window around the
// divergence PC, and the exit status is 1; re-running with the printed
// seed reproduces it exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/workload"
)

func main() {
	var (
		seed         = flag.Uint64("seed", 1, "first generator seed")
		n            = flag.Uint64("n", 100, "number of generated programs to check")
		chunk        = flag.Uint64("chunk", 0, "sync-point granularity in instructions (0 = default 509)")
		mode         = flag.String("mode", "all", "all|lockstep|snapshot|serialize|replay|chunks|policies")
		ckpt         = flag.Bool("ckpt", false, "also run the checkpoint cache-equivalence check per benchmark")
		batch        = flag.Bool("batch", false, "also run event-batch invariance checks (programs and policies)")
		fault        = flag.Bool("faults", false, "also run the fault-equivalence check (seeded fault injection vs fault-free artifacts)")
		sweep        = flag.Bool("sweep", false, "also run the sweep-equivalence check (distributed coordinator/worker sweep vs sequential artifacts)")
		sweepWorkers = flag.String("sweep-workers", "", "comma-separated worker counts for -sweep (default 2,4)")
		chaosf       = flag.Bool("chaos", false, "also run the chaos-schedule exploration (seeded coordinator/worker kill schedules vs sequential artifacts)")
		chaosN       = flag.Int("chaos-schedules", 0, "fault schedules for -chaos (0 = default 8)")
		smpf         = flag.Bool("smp", false, "also run the SMP scheduler-equivalence check (parallel barrier schedule vs sequential round-robin, byte-identical)")
		smpProcs     = flag.String("smp-procs", "", "comma-separated GOMAXPROCS values for -smp (default 1,2,8)")
		obsf         = flag.Bool("obs", false, "also run the observability-invariance checks (metrics/trace attached vs plain, results and artifacts identical)")
		statsf       = flag.Bool("stats", false, "also run the statistical-validity check (interval coverage, determinism, error targeting of the Stratified/RankedSet policies)")
		statsRuns    = flag.Int("stats-runs", 0, "seeded runs per policy per benchmark for -stats (0 = default 100)")
		scale        = flag.Int("scale", 50_000, "benchmark scale divisor for policy determinism")
		bench        = flag.String("bench", "gzip,mcf", "comma-separated benchmarks for policy determinism (\"all\" = every benchmark)")
		verb         = flag.Bool("v", false, "report every seed, not just failures")
	)
	flag.Parse()

	o := check.DefaultOptions()
	if *chunk != 0 {
		o.Chunk = *chunk
	}

	runPrograms := *mode != "policies"
	runPolicies := *mode == "all" || *mode == "policies" || *ckpt || *batch || *obsf
	var totalInstr uint64

	if runPrograms {
		for s := *seed; s < *seed+*n; s++ {
			rep, div, err := checkSeed(s, o, *mode)
			if err != nil {
				fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
				os.Exit(1)
			}
			if div != nil {
				fmt.Fprintf(os.Stderr, "%v\n", div)
				fmt.Fprintf(os.Stderr, "diffcheck: reproduce with: diffcheck -mode %s -seed %d -n 1 -chunk %d\n",
					*mode, s, o.Chunk)
				os.Exit(1)
			}
			if *batch {
				div, err := check.BatchInvariance(check.Generate(s), o)
				if err != nil {
					fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
					os.Exit(1)
				}
				if div != nil {
					fmt.Fprintf(os.Stderr, "%v\n", div)
					fmt.Fprintf(os.Stderr, "diffcheck: reproduce with: diffcheck -batch -seed %d -n 1 -chunk %d\n",
						s, o.Chunk)
					os.Exit(1)
				}
				rep.Checks = append(rep.Checks, "batch-invariance")
			}
			totalInstr += rep.Instr
			if *verb {
				fmt.Printf("seed %d: ok (%d instructions; %s)\n",
					s, rep.Instr, strings.Join(rep.Checks, ", "))
			}
		}
		fmt.Printf("diffcheck: %d programs ok (seeds %d..%d, mode %s, chunk %d, %d instructions)\n",
			*n, *seed, *seed+*n-1, *mode, o.Chunk, totalInstr)
	}

	if runPolicies {
		benches := strings.Split(*bench, ",")
		if *bench == "all" {
			benches = workload.Names()
		}
		opts := core.Options{Scale: *scale}
		for _, b := range benches {
			b = strings.TrimSpace(b)
			if err := check.PolicyDeterminism(b, opts, nil); err != nil {
				fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
				os.Exit(1)
			}
			if *verb {
				fmt.Printf("policies on %s: deterministic at scale %d\n", b, *scale)
			}
			if *ckpt {
				if err := check.CheckpointEquivalence(b, opts, nil); err != nil {
					fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
					os.Exit(1)
				}
				if *verb {
					fmt.Printf("checkpoint equivalence on %s: ok at scale %d\n", b, *scale)
				}
			}
			if *batch {
				if err := check.PolicyBatchInvariance(b, opts, nil); err != nil {
					fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
					os.Exit(1)
				}
				if *verb {
					fmt.Printf("policy batch invariance on %s: ok at scale %d\n", b, *scale)
				}
			}
			if *obsf {
				if err := check.ObsInvariance(b, opts, nil); err != nil {
					fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
					os.Exit(1)
				}
				if *verb {
					fmt.Printf("obs invariance on %s: ok at scale %d\n", b, *scale)
				}
			}
		}
		fmt.Printf("diffcheck: policy determinism ok (%s at scale %d)\n",
			strings.Join(benches, ", "), *scale)
		if *ckpt {
			fmt.Printf("diffcheck: checkpoint equivalence ok (%s at scale %d)\n",
				strings.Join(benches, ", "), *scale)
		}
		if *batch {
			fmt.Printf("diffcheck: batch invariance ok (%s at scale %d, batch sizes %v)\n",
				strings.Join(benches, ", "), *scale, check.BatchSizes)
		}
		if *obsf {
			if err := check.ObsArtifactInvariance(*scale*2, benches); err != nil {
				fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("diffcheck: obs invariance ok (%s at scale %d; artifacts byte-identical with metrics attached)\n",
				strings.Join(benches, ", "), *scale)
		}
	}

	if *fault {
		fo := check.FaultOptions{
			RequireKinds: []faults.Kind{
				faults.DiskRead, faults.DiskWrite, faults.DiskSync,
				faults.CorruptRead, faults.TornWrite,
				faults.RunPanic, faults.RunHang, faults.RunError,
			},
		}
		if *verb {
			fo.Progress = os.Stderr
		}
		if err := check.FaultEquivalence(fo); err != nil {
			fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("diffcheck: fault equivalence ok (artifacts byte-identical under injected faults)")
	}

	if *sweep {
		so := check.SweepOptions{
			RequireKinds: []faults.Kind{
				faults.WorkerKill, faults.NetGet, faults.NetPut, faults.NetCorrupt,
			},
		}
		if *sweepWorkers != "" {
			max := 0
			for _, s := range strings.Split(*sweepWorkers, ",") {
				var w int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &w); err != nil || w < 1 {
					fmt.Fprintf(os.Stderr, "diffcheck: bad -sweep-workers entry %q\n", s)
					os.Exit(2)
				}
				so.Workers = append(so.Workers, w)
				if w > max {
					max = w
				}
			}
			// In-flight GET corruption needs a cross-worker checkpoint
			// hit, which small worker counts rarely produce; the kind has
			// a dedicated unit pin in internal/sweep, so only require it
			// here when the matrix makes hits likely.
			if max < 4 {
				kinds := so.RequireKinds[:0]
				for _, k := range so.RequireKinds {
					if k != faults.NetCorrupt {
						kinds = append(kinds, k)
					}
				}
				so.RequireKinds = kinds
			}
		}
		if *verb {
			so.Progress = os.Stderr
		}
		if err := check.SweepEquivalence(so); err != nil {
			fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("diffcheck: sweep equivalence ok (distributed sweep byte-identical to sequential run, exactly-once accounting)")
	}

	if *chaosf {
		if *chaosN <= 0 {
			*chaosN = 8
		}
		co := chaos.Options{Seed: *seed, Schedules: *chaosN}
		if *verb {
			co.Progress = os.Stderr
			co.Verbose = true
		} else {
			co.Progress = os.Stdout
		}
		if err := chaos.ExploreWith(co); err != nil {
			fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
			fmt.Fprintf(os.Stderr, "diffcheck: reproduce with: diffcheck -chaos -seed %d -chaos-schedules %d\n",
				*seed, co.Schedules)
			os.Exit(1)
		}
		fmt.Printf("diffcheck: chaos exploration ok (%d schedules from seed %d; coordinator kill/restart, WAL tears, worker kills — artifacts byte-identical, exactly-once)\n",
			co.Schedules, *seed)
	}

	if *smpf {
		var so check.SMPOptions
		if *smpProcs != "" {
			for _, s := range strings.Split(*smpProcs, ",") {
				var p int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &p); err != nil || p < 1 {
					fmt.Fprintf(os.Stderr, "diffcheck: bad -smp-procs entry %q\n", s)
					os.Exit(2)
				}
				so.Procs = append(so.Procs, p)
			}
		}
		if *verb {
			so.Progress = os.Stderr
		}
		if err := check.SMPEquivalence(so); err != nil {
			fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("diffcheck: smp equivalence ok (parallel barrier schedule byte-identical to sequential round-robin across quanta and GOMAXPROCS)")
	}

	if *statsf {
		so := check.StatValidityOptions{Runs: *statsRuns}
		if *verb {
			so.Progress = os.Stderr
		}
		if err := check.StatisticalValidity(so); err != nil {
			fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("diffcheck: statistical validity ok (interval coverage, seed determinism, journal round-trip, error targeting)")
	}
}

// checkSeed runs the selected check(s) for one generated program.
func checkSeed(seed uint64, o check.Options, mode string) (*check.ProgramReport, *check.Divergence, error) {
	if mode == "all" {
		return check.CheckProgram(seed, o)
	}
	prog := check.Generate(seed)
	rep := &check.ProgramReport{Seed: seed, Checks: []string{mode}}
	var div *check.Divergence
	var err error
	switch mode {
	case "lockstep":
		div, rep.Instr, err = check.Lockstep(prog, o)
	case "snapshot":
		div, err = check.SnapshotRoundTrip(prog, o)
	case "serialize":
		div, err = check.SerializedRoundTrip(prog, o)
	case "replay":
		div, err = check.ReplayDeterminism(prog, o)
	case "chunks":
		div, err = check.ChunkAgreement(prog, o, 0)
	default:
		return nil, nil, fmt.Errorf("unknown -mode %q (want all|lockstep|snapshot|serialize|replay|chunks|policies)", mode)
	}
	return rep, div, err
}
