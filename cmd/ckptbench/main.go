// Command ckptbench measures the host wall-clock effect of the
// checkpoint store on experiments.Runner.RunAll and emits a small JSON
// report (BENCH_pr2.json by default).
//
// Three passes run the same Dynamic-heavy policy set over the same
// benchmark subset:
//
//	off   checkpointing disabled (the pre-store baseline)
//	cold  a fresh store: pays every deposit, hits nothing
//	warm  the same store again: all canonical fast intervals and
//	      fast-forwards restore instead of re-executing
//
// Results are bit-identical across all three passes (the cache-
// equivalence tests in internal/check and internal/experiments pin
// this); only wall-clock differs. The report records the three
// timings, the warm-vs-cold speedup, and the store's hit/miss
// counters so regressions in either direction are visible.
//
// Usage:
//
//	ckptbench [-scale N] [-bench LIST] [-stride K] [-dir DIR] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/experiments"
	"repro/internal/sampling"
	"repro/internal/vm"
	"repro/internal/workload"
)

type report struct {
	Date        string     `json:"date"`
	Scale       int        `json:"scale"`
	Stride      uint64     `json:"ckpt_stride"`
	Benchmarks  []string   `json:"benchmarks"`
	Policies    []string   `json:"policies"`
	OffSeconds  float64    `json:"off_seconds"`
	ColdSeconds float64    `json:"cold_seconds"`
	WarmSeconds float64    `json:"warm_seconds"`
	WarmSpeedup float64    `json:"warm_speedup_vs_cold"`
	Store       ckpt.Stats `json:"store"`
}

func main() {
	scale := flag.Int("scale", 20_000, "workload scale divisor")
	bench := flag.String("bench", "gzip,mcf,art,equake", "comma-separated benchmark subset (\"all\" = every benchmark)")
	stride := flag.Uint64("stride", 1, "checkpoint deposit stride in base intervals (0 = auto)")
	dir := flag.String("dir", "", "persist checkpoints to this directory (default in-memory)")
	out := flag.String("o", "BENCH_pr2.json", "output JSON path (\"-\" = stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the warm pass to this file")
	flag.Parse()

	benches := strings.Split(*bench, ",")
	if *bench == "all" {
		benches = workload.Names()
	}
	for i := range benches {
		benches[i] = strings.TrimSpace(benches[i])
	}

	// Dynamic sampling is the store's best customer: high-sensitivity
	// configurations spend almost the whole budget in canonical
	// functional intervals, exactly the work a warm store replaces with
	// restores. The four variants share every checkpoint because the
	// key is (workload, hash, scale, instr), not policy.
	policies := []sampling.Policy{
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
		sampling.NewDynamic(vm.MetricCPU, 500, 1, 0),
		sampling.NewDynamic(vm.MetricEXC, 300, 1, 0),
		sampling.NewDynamic(vm.MetricIO, 300, 1, 0),
	}
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.Name()
	}

	runAll := func(opts experiments.Options) (time.Duration, *experiments.Runner) {
		r := experiments.NewRunner(opts)
		start := time.Now()
		if _, err := r.RunAll(policies); err != nil {
			fmt.Fprintln(os.Stderr, "ckptbench:", err)
			os.Exit(1)
		}
		return time.Since(start), r
	}

	base := experiments.Options{Scale: *scale, Benchmarks: benches, CkptStride: *stride}

	offOpts := base
	offOpts.CkptOff = true
	offDur, _ := runAll(offOpts)
	fmt.Fprintf(os.Stderr, "off:  %v\n", offDur)

	store, err := ckpt.New(ckpt.Options{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptbench:", err)
		os.Exit(1)
	}
	withStore := base
	withStore.CkptStore = store
	coldDur, _ := runAll(withStore)
	fmt.Fprintf(os.Stderr, "cold: %v  %s\n", coldDur, store.Stats())

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckptbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	warmDur, _ := runAll(withStore)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "warm: %v  %s\n", warmDur, st)

	rep := report{
		Date:        time.Now().UTC().Format(time.RFC3339),
		Scale:       *scale,
		Stride:      *stride,
		Benchmarks:  benches,
		Policies:    names,
		OffSeconds:  offDur.Seconds(),
		ColdSeconds: coldDur.Seconds(),
		WarmSeconds: warmDur.Seconds(),
		Store:       st,
	}
	if warmDur > 0 {
		rep.WarmSpeedup = float64(coldDur) / float64(warmDur)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ckptbench:", err)
		os.Exit(1)
	}
	fmt.Printf("ckptbench: warm RunAll %.2fx faster than cold (off %.2fs, cold %.2fs, warm %.2fs)\n",
		rep.WarmSpeedup, rep.OffSeconds, rep.ColdSeconds, rep.WarmSeconds)
}
