// Command spectable prints the synthetic SPEC CPU2000 suite (the static
// half of the paper's Table 2) together with the generated workloads'
// structure at a given scale: phase counts, kernel palettes, and
// transition mix.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/workload"
)

func main() {
	scale := flag.Int("scale", 2000, "workload scale divisor")
	detail := flag.Bool("phases", false, "print the per-benchmark phase plans")
	flag.Parse()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SPEC\tRef. input\tFP\tmem-bound\t#Instr (G)\t#Instr scaled\tsegments\tphases\tkernels")
	for _, spec := range workload.Suite {
		_, plan := workload.BuildScaled(spec, *scale)
		kinds := map[string]bool{}
		for _, ph := range plan.Phases {
			kinds[strings.SplitN(ph.Kernel, "/", 2)[0]] = true
		}
		var palette []string
		for k := range kinds {
			palette = append(palette, k)
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%.2f\t%d\t%d\t%d\t%d\t%s\n",
			spec.Name, spec.RefInput, spec.FP, spec.MemBound, spec.PaperGInstr,
			plan.TotalTarget, spec.Segments(), len(plan.Phases), strings.Join(sortStrings(palette), ","))
	}
	tw.Flush()

	if *detail {
		for _, spec := range workload.Suite {
			_, plan := workload.BuildScaled(spec, *scale)
			fmt.Printf("\n%s (interval %d):\n", spec.Name, plan.IntervalLen)
			for _, ph := range plan.Phases {
				fmt.Printf("  phase %2d %-10s %-5s start=%-12d budget=%-11d ws=%d words\n",
					ph.ID, ph.Kernel, ph.Transition, ph.StartApprox, ph.Budget, ph.WSWords)
			}
		}
	}
}

func sortStrings(s []string) []string {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}
