// Command repro regenerates the tables and figures of "Combining
// Simulation and Virtualization through Dynamic Sampling" (ISPASS 2007).
//
// Usage:
//
//	repro [-scale N] [-bench gzip,mcf,...] [-only table1,tableci,fig5,...] [-parallel N] [-q]
//
// The workload scale divides the paper's instruction budgets; 2000 (the
// default) runs the full suite in a few minutes on a multicore host.
//
// With -out DIR, completed measurements are appended to a crash-safe
// run journal under DIR as they finish. Ctrl-C (or SIGTERM) stops the
// sweep cleanly, flushes the journal, and exits nonzero; rerunning with
// the same -out resumes from the completed cells instead of starting
// over. -timeout bounds each measurement attempt and -retries bounds
// how often a failed one is retried; a cell that exhausts the ladder
// renders as an explicit FAILED marker instead of aborting the run.
//
// Distributed sweeps shard the (benchmark × policy) cell matrix across
// machines:
//
//	repro -serve :8080 -out run/            # coordinator
//	repro -worker http://host:8080          # one per core/machine
//
// The coordinator leases cells to workers (re-issuing leases whose
// heartbeats stop), serves warm checkpoints to every worker over the
// same HTTP surface, folds the workers' records into the canonical run
// journal, and — once every cell is accounted for exactly once —
// renders the same artifacts, byte-for-byte, as a sequential run.
// Interrupting the coordinator journals the completed cells; rerunning
// with the same -out leases out only the missing ones. -lease-ttl
// tunes crash-detection latency.
//
// The coordinator is crash-safe beyond clean interrupts: every lease
// grant, record append, and cell completion is written to a
// write-ahead log (DIR/coord.wal) before it is acknowledged, so a
// coordinator killed with SIGKILL mid-sweep and restarted against the
// same -out resumes exactly-once — acknowledged completions are never
// re-executed, and surviving workers reconnect with backoff, detect
// the new coordinator epoch, and re-claim their in-flight cells.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sweep"
)

type experiment struct {
	name string
	desc string
	run  func(r *experiments.Runner, w io.Writer) error
}

func main() {
	scale := flag.Int("scale", 2000, "workload scale divisor (paper instructions / scale)")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default: all 26)")
	only := flag.String("only", "all", "comma-separated experiments: table1,table2,tableci,fig2..fig9")
	parallel := flag.Int("parallel", 0, "concurrent simulations (default: NumCPU)")
	quiet := flag.Bool("q", false, "suppress per-run progress output")
	csvDir := flag.String("csv", "", "also export figure data as CSV files into this directory")
	ckptDir := flag.String("ckpt-dir", "", "persist checkpoints to this directory (warm-starts later runs)")
	ckptStride := flag.Uint64("ckpt-stride", 0, "checkpoint deposit stride in base intervals (0 = auto)")
	noCkpt := flag.Bool("no-ckpt", false, "disable the warm-start checkpoint cache")
	out := flag.String("out", "", "directory for the crash-safe run journal; rerunning with the same -out resumes completed measurements")
	timeout := flag.Duration("timeout", 0, "per-measurement-attempt deadline (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed measurement (0 = default 2, negative = none)")
	faultSeed := flag.Uint64("faults", 0, "inject deterministic faults with this seed (0 = off; robustness testing)")
	serveAddr := flag.String("serve", "", "run as sweep coordinator on this address (e.g. :8080); requires -out, renders artifacts once every cell completes")
	workerURL := flag.String("worker", "", "run as sweep worker against this coordinator URL (e.g. http://host:8080); ignores experiment flags")
	workerID := flag.String("worker-id", "", "worker name in claims and logs (default: worker-<pid>)")
	leaseTTL := flag.Duration("lease-ttl", 0, "coordinator lease TTL before a silent worker's cell is re-issued (default 30s)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus), /metrics.json and /transitions on this address during the sweep (e.g. 127.0.0.1:9090)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerURL != "" && *serveAddr != "" {
		fmt.Fprintln(os.Stderr, "repro: -serve and -worker are mutually exclusive")
		os.Exit(2)
	}
	if *workerURL != "" {
		os.Exit(runSweepWorker(ctx, *workerURL, *workerID, *ckptDir, *timeout, *retries, *faultSeed, *metricsAddr, *quiet))
	}

	opts := experiments.Options{
		Scale:       *scale,
		Parallelism: *parallel,
		CkptDir:     *ckptDir,
		CkptStride:  *ckptStride,
		CkptOff:     *noCkpt,
		Context:     ctx,
		Timeout:     *timeout,
		Retries:     *retries,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *faultSeed != 0 {
		opts.Faults = faults.New(*faultSeed, faults.DefaultPlan())
	}
	if *out != "" {
		opts.Journal = filepath.Join(*out, "journal.jsonl")
	}
	// Observability is opt-in and inert: rendered artifacts are
	// byte-identical with or without it (check.ObsArtifactInvariance).
	// With -out, Runner.Close appends the final metrics snapshot to the
	// run journal.
	if *metricsAddr != "" {
		opts.Obs = obs.NewRegistry()
		opts.Trace = obs.NewTransitionTrace(obs.DefaultTraceCap)
		obs.PublishExpvar(opts.Obs)
		srv, err := obs.Serve(*metricsAddr, opts.Obs, opts.Trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "repro: serving metrics on http://%s/metrics\n", srv.Addr())
	}
	if *serveAddr != "" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "repro: -serve requires -out (the merged run journal lives there)")
			os.Exit(2)
		}
		if code := runSweepServe(ctx, *serveAddr, opts, *leaseTTL, *ckptDir, *noCkpt); code != 0 {
			os.Exit(code)
		}
		// The merged journal now sits at opts.Journal; fall through to
		// the normal render path, which replays it without executing
		// anything — artifacts come out byte-identical to a sequential
		// run by construction.
	}

	r := experiments.NewRunner(opts)
	defer r.Close()

	all := []experiment{
		{"table1", "timing simulator parameters", func(r *experiments.Runner, w io.Writer) error { return experiments.Table1(w) }},
		{"table2", "benchmark characteristics", experiments.Table2},
		{"tableci", "CPI confidence intervals (stratified & ranked-set sampling)", experiments.TableCI},
		{"fig2", "IPC vs VM statistic correlation (perlbmk)", experiments.Figure2},
		{"fig3", "sampling scheme schematics", experiments.Figure3},
		{"fig4", "SimPoint vs Dynamic Sampling phases (perlbmk)", experiments.Figure4},
		{"fig5", "accuracy vs speed", experiments.Figure5},
		{"fig6", "IPC per policy", experiments.Figure6},
		{"fig7", "simulation time per policy", experiments.Figure7},
		{"fig8", "IPC per benchmark", experiments.Figure8},
		{"fig9", "simulation time per benchmark", experiments.Figure9},
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		want[strings.TrimSpace(n)] = true
	}
	ran := 0
	for _, e := range all {
		if !want["all"] && !want[e.name] {
			continue
		}
		ran++
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		if err := e.run(r, os.Stdout); err != nil {
			r.Close() // flush the journal before exiting
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "repro: interrupted during %s\n", e.name)
				if *out != "" {
					fmt.Fprintf(os.Stderr, "repro: completed measurements are journaled; resume by rerunning with the same -out %s\n", *out)
				}
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "repro: no experiment matches -only=%s\n", *only)
		os.Exit(2)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		err := experiments.WriteAllCSV(r, func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name))
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Printf("CSV data written to %s\n", *csvDir)
	}

	if st, ok := r.CkptStats(); ok && !*quiet {
		fmt.Fprintf(os.Stderr, "checkpoint store: %s\n", st)
	}
	if fs := r.Failures(); len(fs) != 0 {
		fmt.Fprintf(os.Stderr, "repro: %d measurement(s) failed after retries and are marked FAILED above\n", len(fs))
		r.Close()
		os.Exit(3)
	}
}

// runSweepWorker joins the sweep at the coordinator URL, claims and
// executes cells until the coordinator reports the sweep done, and
// exits. The coordinator owns the journal and the artifacts; a worker
// only executes leased cells and ships their records back.
func runSweepWorker(ctx context.Context, url, id, ckptDir string, timeout time.Duration,
	retries int, faultSeed uint64, metricsAddr string, quiet bool) int {
	if id == "" {
		id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	wo := sweep.WorkerOptions{
		Client:  sweep.NewClient(url, nil),
		ID:      id,
		Context: ctx,
		CkptDir: ckptDir,
		Timeout: timeout,
		Retries: retries,
	}
	if !quiet {
		wo.Progress = os.Stderr
	}
	if faultSeed != 0 {
		inj := faults.New(faultSeed, faults.DefaultPlan())
		wo.Faults = inj
		wo.Client.Faults = inj
	}
	if metricsAddr != "" {
		wo.Obs = obs.NewRegistry()
		obs.PublishExpvar(wo.Obs)
		srv, err := obs.Serve(metricsAddr, wo.Obs, obs.NewTransitionTrace(obs.DefaultTraceCap))
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "repro: serving metrics on http://%s/metrics\n", srv.Addr())
	}
	st, err := sweep.RunWorker(wo)
	if err != nil {
		if errors.Is(err, context.Canceled) || ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "repro: worker %s interrupted (%d cells executed); the coordinator will re-issue its lease\n",
				id, st.Executions)
			return 130
		}
		fmt.Fprintf(os.Stderr, "repro: worker %s: %v\n", id, err)
		return 1
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "repro: worker %s done: %d claims, %d completions, %d executions\n",
			id, st.Claims, st.Completions, st.Executions)
	}
	return 0
}

// runSweepServe runs the coordinator side of a distributed sweep: it
// leases the cell matrix to HTTP workers, serves the shared checkpoint
// tier, and folds the returned records into the canonical run journal
// at opts.Journal. Returns 0 once every cell is accounted for, 130 on
// interrupt (the partial journal is written so a rerun resumes), 1 on
// error.
func runSweepServe(ctx context.Context, addr string, opts experiments.Options,
	ttl time.Duration, ckptDir string, noCkpt bool) int {
	prior, err := experiments.ReadJournal(opts.Journal, opts.Scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		return 1
	}
	cfg := sweep.Config{Scale: opts.Scale, Benchmarks: opts.Benchmarks, LeaseTTL: ttl}
	// The write-ahead log beside the journal makes the coordinator
	// crash-safe beyond clean interrupts: a SIGKILLed coordinator
	// restarted with the same -out replays coord.wal, restores every
	// acknowledged completion (even those not yet folded into the
	// journal), and re-leases only the unfinished cells under a new
	// epoch that in-flight workers detect and re-claim against.
	coord, err := sweep.NewWALCoordinator(cfg, filepath.Join(filepath.Dir(opts.Journal), "coord.wal"), prior, opts.Obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		return 1
	}
	defer coord.CloseWAL()

	// The coordinator-side store backs the shared checkpoint tier; with
	// -no-ckpt the endpoints answer 503 and workers run from scratch.
	var store *ckpt.Store
	if !noCkpt {
		store, err = ckpt.New(ckpt.Options{Dir: ckptDir, Obs: opts.Obs})
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return 1
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		return 1
	}
	srv := &http.Server{Handler: sweep.NewServer(coord, store, opts.Obs, opts.Trace).Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	st := coord.Stats()
	fmt.Fprintf(os.Stderr, "repro: sweep coordinator on http://%s (epoch %d) — %d cells (%d journaled, %d restored from WAL); start workers with -worker http://%s\n",
		ln.Addr(), st.Epoch, st.Cells, st.Replayed, st.Restored, ln.Addr())

	writeJournal := func() bool {
		if err := coord.WriteJournal(opts.Journal); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return false
		}
		return true
	}
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	lastDone := st.Done
	for !coord.Done() {
		select {
		case <-ctx.Done():
			st = coord.Stats()
			writeJournal()
			fmt.Fprintf(os.Stderr, "repro: interrupted with %d/%d cells complete; journaled — resume by rerunning with the same -out\n",
				st.Done, st.Cells)
			return 130
		case <-ticker.C:
		}
		if st = coord.Stats(); opts.Progress != nil && st.Done != lastDone {
			lastDone = st.Done
			fmt.Fprintf(opts.Progress, "sweep: %d/%d cells complete (%d leased)\n", st.Done, st.Cells, st.Leased)
		}
	}
	if !writeJournal() {
		return 1
	}
	// Linger briefly before the deferred shutdown so a worker sleeping
	// through the final completion wakes to a live /v1/claim and learns
	// the sweep is done, rather than hitting connection-refused.
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
	}
	if opts.Progress != nil {
		st = coord.Stats()
		fmt.Fprintf(opts.Progress, "sweep complete: %d cells (%d replayed, %d leases reissued); merged journal at %s\n",
			st.Cells, st.Replayed, st.Reissues, opts.Journal)
	}
	return 0
}
