// Command tracer records a benchmark's instruction event stream to a
// trace file, or replays a recorded trace through the timing model —
// the trace-driven workflow the paper contrasts with its execution-
// driven approach.
//
//	tracer -record -bench gzip -scale 50000 -n 2000000 -o gzip.trc
//	tracer -replay -i gzip.trc
//	tracer -replay -i gzip.trc -width 6 -window 384   # re-time a config
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/power"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	record := flag.Bool("record", false, "record a trace")
	replay := flag.Bool("replay", false, "replay a trace through the timing model")
	bench := flag.String("bench", "gzip", "benchmark to record")
	scale := flag.Int("scale", 50_000, "workload scale divisor")
	n := flag.Uint64("n", 0, "instructions to record (0 = to completion)")
	out := flag.String("o", "", "output trace file (record)")
	in := flag.String("i", "", "input trace file (replay)")
	width := flag.Int("width", 0, "replay: override machine width")
	window := flag.Int("window", 0, "replay: override instruction window")
	flag.Parse()

	switch {
	case *record:
		if *out == "" {
			fatal("record needs -o")
		}
		spec, err := workload.ByName(*bench)
		if err != nil {
			fatal("%v", err)
		}
		img, _ := workload.BuildScaled(spec, *scale)
		m := vm.New(vm.Config{})
		m.Load(img)
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		w, err := trace.NewWriter(f)
		if err != nil {
			fatal("%v", err)
		}
		budget := *n
		if budget == 0 {
			budget = spec.ScaledInstr(*scale)
		}
		executed := m.Run(budget, w)
		if err := w.Close(); err != nil {
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("recorded %d events to %s (%d bytes, %.2f B/event)\n",
			executed, *out, st.Size(), float64(st.Size())/float64(executed))

	case *replay:
		if *in == "" {
			fatal("replay needs -i")
		}
		f, err := os.Open(*in)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal("%v", err)
		}
		cfg := timing.DefaultConfig()
		if *width > 0 {
			cfg.Width = *width
		}
		if *window > 0 {
			cfg.Window = *window
		}
		core := timing.NewCore(cfg)
		meter := power.NewMeter(core, power.DefaultParams())
		events, err := r.Replay(core)
		if err != nil {
			fatal("replay: %v", err)
		}
		mk := core.Marker()
		e := meter.Sample()
		fmt.Printf("replayed %d events: %d cycles, IPC %.4f\n",
			events, mk.Cycles, float64(mk.Instrs)/float64(mk.Cycles))
		fmt.Printf("energy %.3f mJ, avg power %.1f W, EPI %.2f nJ\n",
			e.TotalJ()*1e3, e.AvgWatts(), e.EPI())
		l1i, l1d, l2 := core.CacheStats()
		fmt.Printf("miss rates: L1I %.2f%%  L1D %.2f%%  L2 %.2f%%  mispredict %.2f%%\n",
			l1i.MissRate()*100, l1d.MissRate()*100, l2.MissRate()*100,
			core.Predictor().Stats().MispredRate()*100)

	default:
		fatal("need -record or -replay")
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracer: "+format+"\n", args...)
	os.Exit(1)
}
