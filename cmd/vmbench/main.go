// Command vmbench measures interpreter throughput in MIPS (million
// guest instructions per host second) for the three execution modes the
// paper prices — fast (no events), event-generating (batched sink), and
// detailed timing — plus an end-to-end evaluation sweep through
// experiments.Runner, and emits a JSON report (BENCH_pr3.json by
// default) comparing against the recorded pre-batching baseline.
//
// The baseline numbers embedded below were measured on the same
// benchmark bodies immediately before the batched event pipeline and
// hot-loop optimizations landed; re-run with -baseline to overwrite
// them with the current tree's numbers (e.g. when moving to new
// hardware).
//
// Usage:
//
//	vmbench [-time 3s] [-runs 3] [-o BENCH_pr3.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/timing"
	"repro/internal/vm"
	"repro/internal/workload"
)

// recordedBaseline is the pre-PR throughput on the reference host
// (single-core x86-64, Go 1.24): per-event sink dispatch, per-
// retirement Class() calls, no batch buffer.
var recordedBaseline = modes{
	Fast:   158.9,
	Event:  50.18,
	Detail: 36.03,
	RunAll: 61.33,
}

type modes struct {
	Fast   float64 `json:"fast_minstr_s"`
	Event  float64 `json:"event_minstr_s"`
	Detail float64 `json:"detail_minstr_s"`
	RunAll float64 `json:"runall_minstr_s"`
}

type report struct {
	Date        string  `json:"date"`
	VMScale     int     `json:"vm_scale"`
	RunAllScale int     `json:"runall_scale"`
	Baseline    modes   `json:"baseline_pre_batching"`
	Current     modes   `json:"current"`
	Speedup     modes   `json:"speedup"`
	EventObsOff float64 `json:"event_obs_off_minstr_s"`
	EventObsOn  float64 `json:"event_obs_on_minstr_s"`
	// ObsOverheadPct is the event-mode throughput cost of attaching the
	// metrics registry and transition trace; the obs layer's budget is
	// under 2%.
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	MeasureSecs    float64 `json:"seconds_per_measurement"`
	Runs           int     `json:"runs_best_of"`
}

// measureVM runs gzip in 100k-instruction slices for at least d and
// returns Minstr/s. makeSink supplies a fresh sink per machine (nil
// for fast mode).
func measureVM(d time.Duration, makeSink func() vm.Sink) float64 {
	spec, err := workload.ByName("gzip")
	if err != nil {
		fatal(err)
	}
	img, _ := workload.BuildScaled(spec, 20_000)
	newM := func() (*vm.Machine, vm.Sink) {
		m := vm.New(vm.Config{})
		m.Load(img)
		var s vm.Sink
		if makeSink != nil {
			s = makeSink()
		}
		return m, s
	}
	m, sink := newM()
	var executed uint64
	start := time.Now()
	for time.Since(start) < d {
		n := m.Run(100_000, sink)
		if n == 0 {
			m, sink = newM()
			n = m.Run(100_000, sink)
		}
		executed += n
	}
	return float64(executed) / time.Since(start).Seconds() / 1e6
}

// measureEventObs runs gzip in event mode through core.Session — the
// layer the obs instrumentation hooks — in 100k-instruction slices for
// at least d and returns Minstr/s. With withObs, a metrics registry and
// transition trace are attached, so the difference against the plain
// run is the whole observability overhead.
func measureEventObs(d time.Duration, withObs bool) float64 {
	spec, err := workload.ByName("gzip")
	if err != nil {
		fatal(err)
	}
	newS := func() *core.Session {
		opts := core.Options{Scale: 20_000}
		if withObs {
			opts.Obs = obs.NewRegistry()
			opts.Trace = obs.NewTransitionTrace(obs.DefaultTraceCap)
		}
		return core.NewSession(spec, opts)
	}
	s := newS()
	sink := &vm.CountingSink{}
	var executed uint64
	start := time.Now()
	for time.Since(start) < d {
		n := s.RunEvents(100_000, sink)
		if n == 0 {
			s = newS()
			n = s.RunEvents(100_000, sink)
		}
		executed += n
	}
	return float64(executed) / time.Since(start).Seconds() / 1e6
}

// measureRunAll times full evaluation sweeps (full timing + Dynamic
// Sampling over gzip+mcf) through fresh Runners until d has elapsed
// and returns the blended Minstr/s.
func measureRunAll(d time.Duration, scale int) float64 {
	policies := []sampling.Policy{
		sampling.FullTiming{},
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
	}
	var executed uint64
	start := time.Now()
	for time.Since(start) < d {
		r := experiments.NewRunner(experiments.Options{
			Scale:      scale,
			Benchmarks: []string{"gzip", "mcf"},
		})
		results, err := r.RunAll(policies)
		if err != nil {
			fatal(err)
		}
		for _, byPolicy := range results {
			for _, res := range byPolicy {
				executed += res.Instructions
			}
		}
	}
	return float64(executed) / time.Since(start).Seconds() / 1e6
}

func bestOf(runs int, f func() float64) float64 {
	best := 0.0
	for i := 0; i < runs; i++ {
		if v := f(); v > best {
			best = v
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmbench:", err)
	os.Exit(1)
}

func main() {
	per := flag.Duration("time", 3*time.Second, "minimum duration per measurement")
	runs := flag.Int("runs", 3, "measurements per mode (best is reported)")
	out := flag.String("o", "BENCH_pr3.json", "output JSON path (\"-\" = stdout)")
	asBaseline := flag.Bool("baseline", false, "record current numbers as the baseline too")
	runallScale := flag.Int("runall-scale", 2000, "workload scale for the end-to-end sweep")
	flag.Parse()

	rep := report{
		Date:        time.Now().UTC().Format(time.RFC3339),
		VMScale:     20_000,
		RunAllScale: *runallScale,
		Baseline:    recordedBaseline,
		MeasureSecs: per.Seconds(),
		Runs:        *runs,
	}

	fmt.Fprintln(os.Stderr, "vmbench: fast mode...")
	rep.Current.Fast = bestOf(*runs, func() float64 { return measureVM(*per, nil) })
	fmt.Fprintln(os.Stderr, "vmbench: event mode (CountingSink)...")
	rep.Current.Event = bestOf(*runs, func() float64 {
		return measureVM(*per, func() vm.Sink { return &vm.CountingSink{} })
	})
	fmt.Fprintln(os.Stderr, "vmbench: detailed timing...")
	rep.Current.Detail = bestOf(*runs, func() float64 {
		return measureVM(*per, func() vm.Sink { return timing.NewCore(timing.DefaultConfig()) })
	})
	fmt.Fprintln(os.Stderr, "vmbench: event mode, obs detached vs attached...")
	rep.EventObsOff = bestOf(*runs, func() float64 { return measureEventObs(*per, false) })
	rep.EventObsOn = bestOf(*runs, func() float64 { return measureEventObs(*per, true) })
	rep.ObsOverheadPct = (1 - rep.EventObsOn/rep.EventObsOff) * 100
	fmt.Fprintln(os.Stderr, "vmbench: end-to-end RunAll sweep...")
	rep.Current.RunAll = bestOf(*runs, func() float64 { return measureRunAll(*per, *runallScale) })

	if *asBaseline {
		rep.Baseline = rep.Current
	}
	rep.Speedup = modes{
		Fast:   rep.Current.Fast / rep.Baseline.Fast,
		Event:  rep.Current.Event / rep.Baseline.Event,
		Detail: rep.Current.Detail / rep.Baseline.Detail,
		RunAll: rep.Current.RunAll / rep.Baseline.RunAll,
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("vmbench: fast %.1f  event %.1f  detail %.1f  runall %.1f Minstr/s (event speedup %.2fx, obs overhead %.2f%%) -> %s\n",
		rep.Current.Fast, rep.Current.Event, rep.Current.Detail, rep.Current.RunAll,
		rep.Speedup.Event, rep.ObsOverheadPct, *out)
}
