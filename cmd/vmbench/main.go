// Command vmbench measures interpreter throughput in MIPS (million
// guest instructions per host second) for the three execution modes the
// paper prices — fast (no events), event-generating (batched sink), and
// detailed timing — plus an end-to-end evaluation sweep through
// experiments.Runner, and emits the BENCH_*.json schema (date, scales,
// baseline, current, speedup) directly, so bench files are never
// hand-assembled.
//
// The baseline defaults to numbers recorded before the batched event
// pipeline landed; pass -baseline-file to compare against the "current"
// section of a previous report (the committed BENCH_prN.json of the
// last PR, measured on the same host), or -baseline to record this
// run's numbers as their own baseline.
//
// With -max-regress P the tool becomes a CI regression guard: after
// measuring, it fails (exit 1) if any mode's throughput fell more than
// P percent below the baseline. Like the sweep smoke test, the guard
// only arms on hosts with at least 2 CPUs — a starved shared runner
// produces throughput noise far above any real regression signal — and
// reports itself skipped otherwise.
//
// Usage:
//
//	vmbench [-time 3s] [-runs 3] [-o BENCH.json] [-json]
//	        [-baseline-file BENCH_pr3.json] [-max-regress 15]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/timing"
	"repro/internal/vm"
	"repro/internal/workload"
)

// recordedBaseline is the pre-batching throughput on the original
// reference host (single-core x86-64, Go 1.24): per-event sink
// dispatch, per-retirement Class() calls, no batch buffer. Used only
// when no -baseline-file is given.
var recordedBaseline = modes{
	Fast:   158.9,
	Event:  50.18,
	Detail: 36.03,
	RunAll: 61.33,
}

type modes struct {
	Fast   float64 `json:"fast_minstr_s"`
	Event  float64 `json:"event_minstr_s"`
	Detail float64 `json:"detail_minstr_s"`
	RunAll float64 `json:"runall_minstr_s"`
}

type report struct {
	Date        string `json:"date"`
	GoMaxProcs  int    `json:"go_maxprocs"`
	VMScale     int    `json:"vm_scale"`
	RunAllScale int    `json:"runall_scale"`
	// BaselineSource says where Baseline came from: "recorded" (the
	// constants above), "self" (-baseline), or the -baseline-file path.
	BaselineSource string  `json:"baseline_source"`
	Baseline       modes   `json:"baseline"`
	Current        modes   `json:"current"`
	Speedup        modes   `json:"speedup"`
	EventObsOff    float64 `json:"event_obs_off_minstr_s"`
	EventObsOn     float64 `json:"event_obs_on_minstr_s"`
	// ObsOverheadPct is the event-mode throughput cost of attaching the
	// metrics registry and transition trace; the obs layer's budget is
	// under 2%.
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	MeasureSecs    float64 `json:"seconds_per_measurement"`
	Runs           int     `json:"runs_best_of"`
}

// loadBaseline reads the "current" section of a previous report. Only
// that section is decoded, so files written under older schema
// revisions load fine.
func loadBaseline(path string) modes {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var prev struct {
		Current modes `json:"current"`
	}
	if err := json.Unmarshal(raw, &prev); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if prev.Current == (modes{}) {
		fatal(fmt.Errorf("%s: no \"current\" throughput section", path))
	}
	return prev.Current
}

// measureVM runs gzip in 100k-instruction slices for at least d and
// returns Minstr/s. makeSink supplies a fresh sink per guest run (nil
// for fast mode). The machine is built and loaded once and rewound to
// its boot snapshot whenever the guest completes, so the timed loop
// measures the interpreter rather than allocator and loader churn.
func measureVM(d time.Duration, makeSink func() vm.Sink) float64 {
	spec, err := workload.ByName("gzip")
	if err != nil {
		fatal(err)
	}
	img, _ := workload.BuildScaled(spec, 20_000)
	m := vm.New(vm.Config{})
	m.Load(img)
	boot := m.Snapshot()
	var sink vm.Sink
	if makeSink != nil {
		sink = makeSink()
	}
	var executed uint64
	start := time.Now()
	for time.Since(start) < d {
		n := m.Run(100_000, sink)
		if n == 0 {
			if err := m.Restore(boot); err != nil {
				fatal(err)
			}
			if makeSink != nil {
				sink = makeSink()
			}
			n = m.Run(100_000, sink)
		}
		executed += n
	}
	return float64(executed) / time.Since(start).Seconds() / 1e6
}

// measureEventObs runs gzip in event mode through core.Session — the
// layer the obs instrumentation hooks — in 100k-instruction slices for
// at least d and returns Minstr/s. With withObs, a metrics registry and
// transition trace are attached, so the difference against the plain
// run is the whole observability overhead.
func measureEventObs(d time.Duration, withObs bool) float64 {
	spec, err := workload.ByName("gzip")
	if err != nil {
		fatal(err)
	}
	newS := func() *core.Session {
		opts := core.Options{Scale: 20_000}
		if withObs {
			opts.Obs = obs.NewRegistry()
			opts.Trace = obs.NewTransitionTrace(obs.DefaultTraceCap)
		}
		return core.NewSession(spec, opts)
	}
	s := newS()
	sink := &vm.CountingSink{}
	var executed uint64
	start := time.Now()
	for time.Since(start) < d {
		n := s.RunEvents(100_000, sink)
		if n == 0 {
			s = newS()
			n = s.RunEvents(100_000, sink)
		}
		executed += n
	}
	return float64(executed) / time.Since(start).Seconds() / 1e6
}

// measureRunAll times full evaluation sweeps (full timing + Dynamic
// Sampling over gzip+mcf) through fresh Runners until d has elapsed
// and returns the blended Minstr/s.
func measureRunAll(d time.Duration, scale int) float64 {
	policies := []sampling.Policy{
		sampling.FullTiming{},
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
	}
	var executed uint64
	start := time.Now()
	for time.Since(start) < d {
		r := experiments.NewRunner(experiments.Options{
			Scale:      scale,
			Benchmarks: []string{"gzip", "mcf"},
		})
		results, err := r.RunAll(policies)
		if err != nil {
			fatal(err)
		}
		for _, byPolicy := range results {
			for _, res := range byPolicy {
				executed += res.Instructions
			}
		}
	}
	return float64(executed) / time.Since(start).Seconds() / 1e6
}

func bestOf(runs int, f func() float64) float64 {
	best := 0.0
	for i := 0; i < runs; i++ {
		if v := f(); v > best {
			best = v
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmbench:", err)
	os.Exit(1)
}

func main() {
	per := flag.Duration("time", 3*time.Second, "minimum duration per measurement")
	runs := flag.Int("runs", 3, "measurements per mode (best is reported)")
	out := flag.String("o", "BENCH.json", "output JSON path (\"-\" = stdout)")
	asJSON := flag.Bool("json", false, "also print the report JSON to stdout")
	asBaseline := flag.Bool("baseline", false, "record current numbers as the baseline too")
	baselineFile := flag.String("baseline-file", "", "previous BENCH_*.json whose \"current\" numbers become the baseline")
	maxRegress := flag.Float64("max-regress", 0, "fail if any mode regresses more than this percent vs the baseline (0 = off)")
	runallScale := flag.Int("runall-scale", 2000, "workload scale for the end-to-end sweep")
	flag.Parse()

	rep := report{
		Date:           time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		VMScale:        20_000,
		RunAllScale:    *runallScale,
		BaselineSource: "recorded",
		Baseline:       recordedBaseline,
		MeasureSecs:    per.Seconds(),
		Runs:           *runs,
	}
	if *baselineFile != "" {
		rep.BaselineSource = *baselineFile
		rep.Baseline = loadBaseline(*baselineFile)
	}

	fmt.Fprintln(os.Stderr, "vmbench: fast mode...")
	rep.Current.Fast = bestOf(*runs, func() float64 { return measureVM(*per, nil) })
	fmt.Fprintln(os.Stderr, "vmbench: event mode (CountingSink)...")
	rep.Current.Event = bestOf(*runs, func() float64 {
		return measureVM(*per, func() vm.Sink { return &vm.CountingSink{} })
	})
	fmt.Fprintln(os.Stderr, "vmbench: detailed timing...")
	rep.Current.Detail = bestOf(*runs, func() float64 {
		return measureVM(*per, func() vm.Sink { return timing.NewCore(timing.DefaultConfig()) })
	})
	fmt.Fprintln(os.Stderr, "vmbench: event mode, obs detached vs attached...")
	rep.EventObsOff = bestOf(*runs, func() float64 { return measureEventObs(*per, false) })
	rep.EventObsOn = bestOf(*runs, func() float64 { return measureEventObs(*per, true) })
	rep.ObsOverheadPct = (1 - rep.EventObsOn/rep.EventObsOff) * 100
	fmt.Fprintln(os.Stderr, "vmbench: end-to-end RunAll sweep...")
	rep.Current.RunAll = bestOf(*runs, func() float64 { return measureRunAll(*per, *runallScale) })

	if *asBaseline {
		rep.BaselineSource = "self"
		rep.Baseline = rep.Current
	}
	rep.Speedup = modes{
		Fast:   rep.Current.Fast / rep.Baseline.Fast,
		Event:  rep.Current.Event / rep.Baseline.Event,
		Detail: rep.Current.Detail / rep.Baseline.Detail,
		RunAll: rep.Current.RunAll / rep.Baseline.RunAll,
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
		if *asJSON {
			os.Stdout.Write(enc)
		}
		fmt.Printf("vmbench: fast %.1f  event %.1f  detail %.1f  runall %.1f Minstr/s (event speedup %.2fx, obs overhead %.2f%%) -> %s\n",
			rep.Current.Fast, rep.Current.Event, rep.Current.Detail, rep.Current.RunAll,
			rep.Speedup.Event, rep.ObsOverheadPct, *out)
	}

	if *maxRegress > 0 {
		if rep.GoMaxProcs < 2 {
			fmt.Fprintf(os.Stderr, "vmbench: regression guard skipped: GOMAXPROCS=%d (needs >= 2 for stable throughput)\n", rep.GoMaxProcs)
			return
		}
		floor := 1 - *maxRegress/100
		failed := false
		for _, m := range []struct {
			name string
			s    float64
		}{
			{"fast", rep.Speedup.Fast},
			{"event", rep.Speedup.Event},
			{"detail", rep.Speedup.Detail},
			{"runall", rep.Speedup.RunAll},
		} {
			if m.s < floor {
				fmt.Fprintf(os.Stderr, "vmbench: REGRESSION: %s mode at %.2fx of baseline (floor %.2fx)\n", m.name, m.s, floor)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vmbench: regression guard ok (all modes >= %.2fx of %s)\n", floor, rep.BaselineSource)
	}
}
