// Command disasm disassembles the generated guest programs: the
// dispatcher ("main"), the staged kernel fragments, or a raw address
// range of the loaded image. Useful when studying or extending the
// workload generator.
//
//	disasm -bench gzip                 # image summary
//	disasm -bench gzip -kernels        # staged kernel fragments
//	disasm -bench gzip -start 0x10000 -count 64
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark to disassemble")
	scale := flag.Int("scale", 50_000, "workload scale divisor")
	kernels := flag.Bool("kernels", false, "dump each kernel archetype fragment")
	start := flag.Uint64("start", 0, "start address to disassemble (0 = summary)")
	count := flag.Int("count", 32, "instructions to disassemble from -start")
	flag.Parse()

	if *kernels {
		for kind := workload.KernelKind(0); int(kind) < workload.NumKernelKinds; kind++ {
			for v := 0; v < 2; v++ {
				fr := workload.BuildFragment(kind, v, workload.HotBase)
				fmt.Printf("---- %s (%d instructions, %d per iteration) ----\n",
					fr.Name(), len(fr.Words), fr.PerIter)
				for i, w := range fr.Words {
					fmt.Printf("  %#06x  %v\n", workload.HotBase+uint64(i*8), isa.Decode(w))
				}
			}
		}
		return
	}

	spec, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm:", err)
		os.Exit(1)
	}
	img, plan := workload.BuildScaled(spec, *scale)

	if *start == 0 {
		fmt.Printf("%s: %d segments, %d initialised bytes, entry %#x\n",
			spec.Name, len(img.Segments), img.Bytes(), img.Entry)
		fmt.Printf("plan: %d phases over %d instructions (interval %d)\n",
			len(plan.Phases), plan.TotalTarget, plan.IntervalLen)
		fmt.Printf("dispatcher at %#x (%d instructions)\n",
			img.Segments[0].Base, len(img.Segments[0].Words))
		fmt.Println("\nfirst 48 dispatcher instructions:")
		for i, w := range img.Segments[0].Words {
			if i >= 48 {
				break
			}
			fmt.Printf("  %#06x  %v\n", img.Segments[0].Base+uint64(i*8), isa.Decode(w))
		}
		return
	}

	// Load into a machine and disassemble from memory (covers staged
	// data too).
	m := vm.New(vm.Config{})
	m.Load(img)
	for i := 0; i < *count; i++ {
		addr := *start + uint64(i*8)
		w := m.Mem().Peek(addr)
		in := isa.Decode(w)
		if !in.Op.Valid() {
			fmt.Printf("  %#06x  .word %#x\n", addr, w)
			continue
		}
		fmt.Printf("  %#06x  %v\n", addr, in)
	}
}
