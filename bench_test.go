// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation (see DESIGN.md for the experiment index).
//
// Each BenchmarkTableN/BenchmarkFigureN target renders its artifact to
// stdout on the first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The workload scale (paper instruction
// budgets divided by REPRO_SCALE, default 2000) and the benchmark subset
// (REPRO_BENCH=gzip,mcf,...) can be set via the environment; results are
// memoised across benchmarks within one run, so the heavy simulations
// are paid once.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sampling"
	"repro/internal/smp"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

var (
	runnerOnce sync.Once
	sharedRun  *experiments.Runner
)

func benchScale() int {
	if s := os.Getenv("REPRO_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 2000
}

func runner() *experiments.Runner {
	runnerOnce.Do(func() {
		opts := experiments.Options{Scale: benchScale()}
		if b := os.Getenv("REPRO_BENCH"); b != "" {
			opts.Benchmarks = strings.Split(b, ",")
		}
		if os.Getenv("REPRO_PROGRESS") != "" {
			opts.Progress = os.Stderr
		}
		sharedRun = experiments.NewRunner(opts)
	})
	return sharedRun
}

// renderOnce runs the experiment b.N times; the artifact is printed on
// the first iteration only (the simulations behind it are memoised, so
// subsequent iterations measure the rendering path).
func renderOnce(b *testing.B, f func(w io.Writer) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		w := io.Writer(io.Discard)
		if i == 0 {
			fmt.Println()
			w = os.Stdout
		}
		if err := f(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Config(b *testing.B) {
	renderOnce(b, experiments.Table1)
}

func BenchmarkTable2Characteristics(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Table2(r, w) })
}

func BenchmarkFigure2Correlation(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Figure2(r, w) })
}

func BenchmarkFigure3Schemes(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Figure3(r, w) })
}

func BenchmarkFigure4PhaseAgreement(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Figure4(r, w) })
}

func BenchmarkFigure5AccuracySpeed(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Figure5(r, w) })
	// Headline anchors as benchmark metrics (paper: 1.1% error, 158x).
	results, err := r.RunAll([]sampling.Policy{
		sampling.FullTiming{}, sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	agg := experiments.AggregateFor(results, r.Benchmarks(), "CPU-300-1M-∞")
	b.ReportMetric(agg.MeanErrPct, "%err/CPU-300-1M-inf")
	b.ReportMetric(agg.Speedup, "speedup/CPU-300-1M-inf")
}

func BenchmarkFigure6IPC(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Figure6(r, w) })
}

func BenchmarkFigure7SimTime(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Figure7(r, w) })
}

func BenchmarkFigure8PerBenchmarkIPC(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Figure8(r, w) })
}

func BenchmarkFigure9PerBenchmarkTime(b *testing.B) {
	r := runner()
	renderOnce(b, func(w io.Writer) error { return experiments.Figure9(r, w) })
}

// ---- Ablations over the design choices DESIGN.md calls out. ----

// ablationBenches is the subset used for ablation studies: one compute-
// bound, one memory-bound, one FP benchmark.
func ablationBenches(r *experiments.Runner) []string {
	want := []string{"gzip", "mcf", "swim"}
	have := map[string]bool{}
	for _, b := range r.Benchmarks() {
		have[b] = true
	}
	var out []string
	for _, w := range want {
		if have[w] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = r.Benchmarks()[:1]
	}
	return out
}

// runAblation evaluates a set of policies on the ablation subset and
// renders error/speedup per policy.
func runAblation(b *testing.B, title string, policies []sampling.Policy) {
	b.Helper()
	r := runner()
	benches := ablationBenches(r)
	renderOnce(b, func(w io.Writer) error {
		fmt.Fprintf(w, "Ablation: %s (benchmarks: %s)\n", title, strings.Join(benches, ", "))
		for _, p := range policies {
			var errSum, base, pol float64
			n := 0
			for _, bench := range benches {
				full, err := r.Baseline(bench)
				if err != nil {
					return err
				}
				res, err := r.Run(bench, p)
				if err != nil {
					return err
				}
				errSum += res.ErrorVs(full) * 100
				base += full.Cost.Units
				pol += res.Cost.Units
				n++
			}
			fmt.Fprintf(w, "  %-16s err=%.1f%%  speedup=%.1fx\n",
				p.Name(), errSum/float64(n), base/pol)
		}
		return nil
	})
}

func BenchmarkAblationMonitor(b *testing.B) {
	runAblation(b, "monitored variable (S per paper)", []sampling.Policy{
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
		sampling.NewDynamic(vm.MetricEXC, 300, 1, 0),
		sampling.NewDynamic(vm.MetricIO, 100, 1, 0),
	})
}

func BenchmarkAblationSensitivity(b *testing.B) {
	runAblation(b, "sensitivity threshold S", []sampling.Policy{
		sampling.NewDynamic(vm.MetricCPU, 100, 1, 0),
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
		sampling.NewDynamic(vm.MetricCPU, 500, 1, 0),
	})
}

func BenchmarkAblationInterval(b *testing.B) {
	runAblation(b, "interval length", []sampling.Policy{
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
		sampling.NewDynamic(vm.MetricCPU, 300, 10, 0),
		sampling.NewDynamic(vm.MetricCPU, 300, 100, 0),
	})
}

func BenchmarkAblationMaxFunc(b *testing.B) {
	runAblation(b, "max consecutive functional intervals", []sampling.Policy{
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 10),
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 100),
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
	})
}

// BenchmarkAblationWarmup compares measurement warm-up strategies for
// Dynamic Sampling (no warm, detailed warm only, settle + warm).
func BenchmarkAblationWarmup(b *testing.B) {
	scale := benchScale()
	spec, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name         string
		warm, settle int
	}{
		{"no-warm", 0, 0},
		{"warm-only", 1, 0},
		{"settle+warm", 1, 1},
	}
	renderOnce(b, func(w io.Writer) error {
		fmt.Fprintln(w, "Ablation: warm-up before Dynamic Sampling measurements (gzip)")
		base, err := sampling.FullTiming{}.Run(core.NewSession(spec, core.Options{Scale: scale}))
		if err != nil {
			return err
		}
		for _, v := range variants {
			p := sampling.NewDynamic(vm.MetricCPU, 300, 1, 0)
			p.WarmIntervals = v.warm
			p.SettleIntervals = v.settle
			res, err := p.Run(core.NewSession(spec, core.Options{Scale: scale}))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-12s err=%.1f%%  speedup=%.1fx\n",
				v.name, res.ErrorVs(base)*100, res.Speedup(base))
		}
		return nil
	})
}

// BenchmarkAblationTCSize studies the translation-cache capacity's
// effect on the CPU metric's signal quality (capacity flushes add noise
// when the cache is too small).
func BenchmarkAblationTCSize(b *testing.B) {
	scale := benchScale()
	spec, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	renderOnce(b, func(w io.Writer) error {
		fmt.Fprintln(w, "Ablation: translation-cache capacity vs CPU-metric quality (gzip)")
		for _, blocks := range []int{64, 1024, 32768} {
			opts := core.Options{Scale: scale, VM: vm.Config{TCMaxBlocks: blocks}}
			base, err := sampling.FullTiming{}.Run(core.NewSession(spec, opts))
			if err != nil {
				return err
			}
			res, err := sampling.NewDynamic(vm.MetricCPU, 300, 1, 0).Run(core.NewSession(spec, opts))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  TC=%-6d err=%.1f%%  speedup=%.1fx  samples=%d\n",
				blocks, res.ErrorVs(base)*100, res.Speedup(base), res.Samples)
		}
		return nil
	})
}

// BenchmarkVMFastMode measures the raw functional-simulation rate (the
// substrate the whole study rests on).
func BenchmarkVMFastMode(b *testing.B) {
	spec, _ := workload.ByName("gzip")
	img, _ := workload.BuildScaled(spec, 20_000)
	m := vm.New(vm.Config{})
	m.Load(img)
	b.ResetTimer()
	var executed uint64
	for i := 0; i < b.N; i++ {
		n := m.Run(100_000, nil)
		if n == 0 {
			m = vm.New(vm.Config{})
			m.Load(img)
			n = m.Run(100_000, nil)
		}
		executed += n
	}
	b.SetBytes(0)
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkVMEventMode measures the event-generating rate with a cheap
// batched consumer: the tax every instrumented mode (warming, BBV
// profiling, tracing) pays on top of fast mode, and the directly
// optimised path of the batched event pipeline.
func BenchmarkVMEventMode(b *testing.B) {
	spec, _ := workload.ByName("gzip")
	img, _ := workload.BuildScaled(spec, 20_000)
	m := vm.New(vm.Config{})
	m.Load(img)
	sink := &vm.CountingSink{}
	b.ResetTimer()
	var executed uint64
	for i := 0; i < b.N; i++ {
		n := m.Run(100_000, sink)
		if n == 0 {
			m = vm.New(vm.Config{})
			m.Load(img)
			n = m.Run(100_000, sink)
		}
		executed += n
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// benchEventObs drives event mode through core.Session — the layer the
// observability instrumentation hooks — with or without a metrics
// registry and transition trace attached. The On/Off pair bounds the
// obs layer's event-mode overhead (budget: under 2%).
func benchEventObs(b *testing.B, withObs bool) {
	spec, _ := workload.ByName("gzip")
	newS := func() *core.Session {
		opts := core.Options{Scale: 20_000}
		if withObs {
			opts.Obs = obs.NewRegistry()
			opts.Trace = obs.NewTransitionTrace(obs.DefaultTraceCap)
		}
		return core.NewSession(spec, opts)
	}
	s := newS()
	sink := &vm.CountingSink{}
	b.ResetTimer()
	var executed uint64
	for i := 0; i < b.N; i++ {
		n := s.RunEvents(100_000, sink)
		if n == 0 {
			s = newS()
			n = s.RunEvents(100_000, sink)
		}
		executed += n
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkVMEventModeObsOff(b *testing.B) { benchEventObs(b, false) }

func BenchmarkVMEventModeObsOn(b *testing.B) { benchEventObs(b, true) }

// BenchmarkRunAllEndToEnd measures a whole evaluation sweep — full
// timing plus Dynamic Sampling over two benchmarks — through the real
// Runner, capturing the blended fast/warm/detail instruction rate an
// actual reproduction run experiences.
func BenchmarkRunAllEndToEnd(b *testing.B) {
	policies := []sampling.Policy{
		sampling.FullTiming{},
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
	}
	var executed uint64
	for i := 0; i < b.N; i++ {
		// A fresh Runner per iteration defeats result memoisation; the
		// checkpoint store defaults to in-memory and starts cold.
		r := experiments.NewRunner(experiments.Options{
			Scale:      benchScale(),
			Benchmarks: []string{"gzip", "mcf"},
		})
		results, err := r.RunAll(policies)
		if err != nil {
			b.Fatal(err)
		}
		for _, byPolicy := range results {
			for _, res := range byPolicy {
				executed += res.Instructions
			}
		}
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkTimingDetail measures the detailed-simulation rate.
func BenchmarkTimingDetail(b *testing.B) {
	spec, _ := workload.ByName("gzip")
	img, _ := workload.BuildScaled(spec, 20_000)
	m := vm.New(vm.Config{})
	m.Load(img)
	coreModel := timing.NewCore(timing.DefaultConfig())
	b.ResetTimer()
	var executed uint64
	for i := 0; i < b.N; i++ {
		n := m.Run(100_000, coreModel)
		if n == 0 {
			m = vm.New(vm.Config{})
			m.Load(img)
			n = m.Run(100_000, coreModel)
		}
		executed += n
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// ---- Checkpoint store: cold vs warm evaluation sweeps. ----

// ckptPolicies is the sweep used by the cold/warm cache benchmarks:
// several Dynamic configurations whose functional prefixes overlap, so
// checkpoints deposited by one policy warm-start the others.
func ckptPolicies() []sampling.Policy {
	return []sampling.Policy{
		sampling.NewDynamic(vm.MetricCPU, 300, 1, 0),
		sampling.NewDynamic(vm.MetricCPU, 500, 1, 0),
		sampling.NewDynamic(vm.MetricEXC, 300, 1, 0),
	}
}

func ckptRunner(store *ckpt.Store) *experiments.Runner {
	return experiments.NewRunner(experiments.Options{
		Scale:      benchScale(),
		Benchmarks: []string{"gzip", "mcf"},
		CkptStore:  store,
		CkptStride: 1,
	})
}

// BenchmarkRunnerColdCache measures a full policy sweep against an empty
// checkpoint store: every run pays for its own functional fast-forwards
// (minus intra-sweep sharing) and deposits as it goes.
func BenchmarkRunnerColdCache(b *testing.B) {
	policies := ckptPolicies()
	for i := 0; i < b.N; i++ {
		if _, err := ckptRunner(ckpt.NewMemory()).RunAll(policies); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerWarmCache measures the same sweep against a store
// primed by a previous identical sweep, as when re-running an evaluation
// after a policy tweak: fast-forwards become checkpoint restores. The
// cache-equivalence tests pin that the results are bit-identical either
// way; BENCH_pr2.json records the ratio (acceptance floor: 2x).
func BenchmarkRunnerWarmCache(b *testing.B) {
	policies := ckptPolicies()
	store := ckpt.NewMemory()
	if _, err := ckptRunner(store).RunAll(policies); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh Runner each iteration defeats the Runner's own result
		// memoisation; only the checkpoint store is warm.
		if _, err := ckptRunner(store).RunAll(policies); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode measures the serialized-snapshot encode rate
// (the disk store's write path).
func BenchmarkSnapshotEncode(b *testing.B) {
	spec, _ := workload.ByName("gzip")
	img, _ := workload.BuildScaled(spec, 20_000)
	m := vm.New(vm.Config{})
	m.Load(img)
	m.Run(500_000, nil)
	snap := m.Snapshot()
	b.SetBytes(snap.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Extensions beyond the paper's evaluation. ----

// BenchmarkExtensionSMP runs the multi-core consolidation scenario the
// paper's conclusion points to: co-scheduled guests sharing an L2, with
// system-level Dynamic Sampling against full detail.
func BenchmarkExtensionSMP(b *testing.B) {
	scale := benchScale() * 10 // consolidation runs every guest in detail
	names := []string{"gzip", "mcf"}
	renderOnce(b, func(w io.Writer) error {
		fmt.Fprintf(w, "Extension: multi-core consolidation (%s, shared L2)\n", strings.Join(names, "+"))
		ref := smp.New(smp.Config{})
		sys := smp.New(smp.Config{})
		for _, n := range names {
			spec, err := workload.ByName(n)
			if err != nil {
				return err
			}
			img, _ := workload.BuildScaled(spec, scale)
			ref.AddGuest(n, img, spec.ScaledInstr(scale))
			img2, _ := workload.BuildScaled(spec, scale)
			sys.AddGuest(n, img2, spec.ScaledInstr(scale))
		}
		for !ref.Done() {
			ref.RunTimed(1 << 16)
		}
		ests, err := sys.DynamicSample(vm.MetricCPU, 300, 4000, 0)
		if err != nil {
			return err
		}
		for i, g := range ref.Guests() {
			mk := g.Core.Marker()
			full := float64(mk.Instrs) / float64(mk.Cycles)
			e := ests[i].IPC/full - 1
			if e < 0 {
				e = -e
			}
			fmt.Fprintf(w, "  %-6s full=%.4f sampled=%.4f err=%.1f%% samples=%d\n",
				g.Name, full, ests[i].IPC, e*100, ests[i].Samples)
		}
		return nil
	})
}

// BenchmarkExtensionPower estimates whole-run energy with the activity-
// based power model, full detail vs sampled extrapolation.
func BenchmarkExtensionPower(b *testing.B) {
	scale := benchScale() * 10
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	renderOnce(b, func(w io.Writer) error {
		fmt.Fprintln(w, "Extension: energy estimation (mcf)")
		// Full detail.
		img, _ := workload.BuildScaled(spec, scale)
		m := vm.New(vm.Config{})
		m.Load(img)
		c := timing.NewCore(timing.DefaultConfig())
		meter := power.NewMeter(c, power.DefaultParams())
		m.Run(spec.ScaledInstr(scale), c)
		full := meter.Sample()
		fmt.Fprintf(w, "  full detail: %.3f mJ, %.1f W avg, EPI %.2f nJ\n",
			full.TotalJ()*1e3, full.AvgWatts(), full.EPI())

		// Sampled: energy measured only on DS-style periodic samples,
		// extrapolated with the power accumulator.
		img2, _ := workload.BuildScaled(spec, scale)
		m2 := vm.New(vm.Config{})
		m2.Load(img2)
		c2 := timing.NewCore(timing.DefaultConfig())
		meter2 := power.NewMeter(c2, power.DefaultParams())
		var acc power.Accumulator
		const interval = 4000
		i := 0
		for !m2.Halted() {
			if i%20 == 19 { // sample 1 interval in 20
				m2.Run(interval, c2) // warm
				meter2.Sample()      // discard warm energy
				n := m2.Run(interval, c2)
				if n == 0 {
					break
				}
				acc.Sample(meter2.Sample())
			} else {
				if m2.Run(interval, nil) == 0 {
					break
				}
				acc.Functional(interval)
			}
			i++
		}
		est := acc.Estimate(power.DefaultParams().FreqGHz)
		errPct := (est.EPI()/full.EPI() - 1) * 100
		fmt.Fprintf(w, "  sampled 5%%:  %.3f mJ, EPI %.2f nJ (EPI error %+.1f%%)\n",
			est.TotalJ()*1e3, est.EPI(), errPct)
		return nil
	})
}

// BenchmarkExtensionTrace measures trace record and replay rates and
// the storage density of the trace format.
func BenchmarkExtensionTrace(b *testing.B) {
	scale := benchScale() * 10
	spec, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	renderOnce(b, func(w io.Writer) error {
		img, _ := workload.BuildScaled(spec, scale)
		m := vm.New(vm.Config{})
		m.Load(img)
		var buf bytes.Buffer
		tw, err := trace.NewWriter(&buf)
		if err != nil {
			return err
		}
		n := m.Run(1_000_000, tw)
		if err := tw.Close(); err != nil {
			return err
		}
		r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		c := timing.NewCore(timing.DefaultConfig())
		replayed, err := r.Replay(c)
		if err != nil {
			return err
		}
		mk := c.Marker()
		fmt.Fprintf(w, "Extension: trace-driven timing (gzip)\n")
		fmt.Fprintf(w, "  recorded %d events, %.2f B/event; replay IPC %.4f over %d cycles\n",
			n, float64(buf.Len())/float64(n), float64(mk.Instrs)/float64(mk.Cycles), mk.Cycles)
		_ = replayed
		return nil
	})
}
