GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke diffcheck golden-update ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short bounded run of every fuzz target; regression corpora under
# testdata/fuzz/ always run as part of plain `make test`.
fuzz-smoke:
	$(GO) test ./internal/isa -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzAsmRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzMoviExpansion$$' -fuzztime $(FUZZTIME)

# Differential-execution checks over generated guest programs plus
# sampling-policy determinism (see internal/check and cmd/diffcheck).
diffcheck:
	$(GO) run ./cmd/diffcheck -seed 1 -n 200

golden-update:
	$(GO) test ./internal/experiments -run TestGolden -update

ci: vet build race fuzz-smoke diffcheck
