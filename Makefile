GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke diffcheck chaos smp golden-update bench bench-vm bench-smp bench-smoke bench-guard ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short bounded run of every fuzz target; regression corpora under
# testdata/fuzz/ always run as part of plain `make test`.
fuzz-smoke:
	$(GO) test ./internal/isa -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzAsmRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzMoviExpansion$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/vm -run '^$$' -fuzz '^FuzzSnapshotDecode$$' -fuzztime $(FUZZTIME)

# Differential-execution checks over generated guest programs plus
# sampling-policy determinism (see internal/check and cmd/diffcheck).
# -batch adds the event-batch invariance sweep: every program and
# policy re-run across batch capacities {1,3,64,4096}, bit-identical.
# -faults adds the fault-equivalence sweep: rendered artifacts must be
# byte-identical to a fault-free run under seeded fault injection.
# -obs adds the observability-invariance sweep: results and artifacts
# must be identical with the metrics registry and trace attached.
# -sweep adds the sweep-equivalence check: a distributed multi-worker
# sweep (with seeded worker kills and network faults) must produce a
# merged journal byte-identical to sequential execution.
# -stats adds the statistical-validity check: the Stratified/RankedSet
# confidence intervals must deliver their claimed coverage against
# full-timing ground truth, stay seed-deterministic through the
# journal, and honour the error-targeting budget/width contract
# (reduced seed sweep here; CI's statistical-validity job runs the
# full design).
diffcheck:
	$(GO) run ./cmd/diffcheck -seed 1 -n 200 -batch -faults -obs -sweep -stats -stats-runs 25

# Chaos-schedule exploration: CHAOS_SCHEDULES seeded fault schedules
# (coordinator SIGKILL/restart at arbitrary WAL offsets with torn
# tails, worker kills, network/disk faults), each a full distributed
# sweep whose merged journal must render byte-identical artifacts with
# exactly-once accounting (see internal/chaos).
CHAOS_SCHEDULES ?= 8
chaos:
	$(GO) run ./cmd/diffcheck -n 0 -mode lockstep -chaos -chaos-schedules $(CHAOS_SCHEDULES)

# Parallel-SMP equivalence: the goroutine-per-guest barrier schedule
# must be byte-identical to the sequential round-robin reference across
# guest counts, rendezvous quanta (including quantum 1), and GOMAXPROCS
# settings, on the fast, timed, and DynamicSample paths. The race leg
# re-runs the smp/timing/cache suites and the harness under the race
# detector to prove the rendezvous and shared-L2 replay pipeline are
# data-race free.
smp:
	$(GO) test -race -count=1 ./internal/smp ./internal/timing ./internal/cache
	$(GO) test -race -count=1 -timeout 20m ./internal/check -run TestSMPEquivalence
	$(GO) run ./cmd/diffcheck -n 0 -mode lockstep -smp

golden-update:
	$(GO) test ./internal/experiments -run TestGolden -update

# Cold/warm checkpoint-store wall-clock comparison (writes BENCH_pr2.json
# at the repo root), then the full go benchmark suite.
bench:
	$(GO) run ./cmd/ckptbench -o BENCH_pr2.json
	$(GO) test -run '^$$' -bench . -benchmem .

# Interpreter throughput report: MIPS for fast / event / detail modes
# and an end-to-end RunAll sweep, vs the recorded pre-batching baseline
# (writes BENCH_pr3.json at the repo root).
bench-vm:
	$(GO) run ./cmd/vmbench -o BENCH_pr3.json

# Parallel-SMP wall-clock speedup report: sequential vs parallel
# schedule for a 4-guest system in fast mode (writes BENCH_pr10.json at
# the repo root). The -min-speedup guard arms itself only on hosts with
# at least as many CPUs as guests.
bench-smp:
	$(GO) run ./cmd/smpbench -guests 4 -min-speedup 1.5 -o BENCH_pr10.json

# Bounded benchmark sanity pass for CI: tiny scale, one iteration, and
# the ckptbench/vmbench reports to stdout instead of files.
bench-smoke:
	$(GO) run ./cmd/ckptbench -scale 2000 -bench gzip,mcf -o -
	$(GO) run ./cmd/vmbench -time 200ms -runs 1 -o -
	REPRO_SCALE=500 $(GO) test -run '^$$' \
		-bench 'BenchmarkRunner(Cold|Warm)Cache|BenchmarkSnapshotEncode|BenchmarkVM(Fast|Event)Mode|BenchmarkRunAllEndToEnd' -benchtime 1x .

# Throughput regression guard: re-measure the interpreter and fail if
# any mode lands more than 15% below the latest recorded BENCH report.
# vmbench disarms the guard itself on starved hosts (GOMAXPROCS < 2),
# the same gate the sweep smoke test uses, because one-core shared
# runners produce throughput noise far beyond real regression signal.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_pr*.json)))
bench-guard:
	$(GO) run ./cmd/vmbench -time 500ms -runs 2 -o - \
		-baseline-file $(BENCH_BASELINE) -max-regress 15 >/dev/null

ci: vet build race fuzz-smoke diffcheck
