GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke diffcheck golden-update bench bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short bounded run of every fuzz target; regression corpora under
# testdata/fuzz/ always run as part of plain `make test`.
fuzz-smoke:
	$(GO) test ./internal/isa -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzAsmRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzMoviExpansion$$' -fuzztime $(FUZZTIME)

# Differential-execution checks over generated guest programs plus
# sampling-policy determinism (see internal/check and cmd/diffcheck).
diffcheck:
	$(GO) run ./cmd/diffcheck -seed 1 -n 200

golden-update:
	$(GO) test ./internal/experiments -run TestGolden -update

# Cold/warm checkpoint-store wall-clock comparison (writes BENCH_pr2.json
# at the repo root), then the full go benchmark suite.
bench:
	$(GO) run ./cmd/ckptbench -o BENCH_pr2.json
	$(GO) test -run '^$$' -bench . -benchmem .

# Bounded benchmark sanity pass for CI: tiny scale, one iteration, and
# the ckptbench report to stdout instead of a file.
bench-smoke:
	$(GO) run ./cmd/ckptbench -scale 2000 -bench gzip,mcf -o -
	REPRO_SCALE=500 $(GO) test -run '^$$' \
		-bench 'BenchmarkRunner(Cold|Warm)Cache|BenchmarkSnapshotEncode' -benchtime 1x .

ci: vet build race fuzz-smoke diffcheck
