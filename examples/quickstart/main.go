// Quickstart: simulate one SPEC CPU2000 stand-in under Dynamic Sampling
// and compare the estimate against full timing simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hostcost"
	"repro/internal/sampling"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	// Pick a benchmark from the suite (Table 2 of the paper).
	spec, err := workload.ByName("gzip")
	if err != nil {
		log.Fatal(err)
	}

	// A Session couples the functional VM with the timing core. Scale
	// divides the paper's instruction budget (70 G for gzip).
	opts := core.Options{Scale: 10_000}

	// Reference: full timing simulation of every instruction.
	full, err := sampling.FullTiming{}.Run(core.NewSession(spec, opts))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's contribution: Dynamic Sampling monitoring the VM's
	// translation-cache invalidations (the "CPU" variable) with a 300%
	// sensitivity threshold, 1M-instruction intervals, and no cap on
	// consecutive functional intervals.
	ds := sampling.NewDynamic(vm.MetricCPU, 300, 1, 0)
	fast, err := ds.Run(core.NewSession(spec, opts))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark      %s (ref input %s, %d G paper instructions)\n",
		spec.Name, spec.RefInput, spec.PaperGInstr)
	fmt.Printf("full timing    IPC %.4f   modelled host time %s\n",
		full.EstIPC, hostcost.FormatDuration(full.Cost.PaperSeconds))
	fmt.Printf("%s   IPC %.4f   modelled host time %s\n",
		fast.Policy, fast.EstIPC, hostcost.FormatDuration(fast.Cost.PaperSeconds))
	fmt.Printf("accuracy error %.2f%%\n", fast.ErrorVs(full)*100)
	fmt.Printf("speedup        %.0fx with %d timing samples at detected phase changes\n",
		fast.Speedup(full), fast.Samples)
}
