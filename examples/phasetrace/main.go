// Phasetrace reproduces the paper's Figure 2 style analysis for any
// benchmark: per-interval IPC under full timing alongside the VM's
// internal statistics, demonstrating the correlation Dynamic Sampling
// exploits. Output is CSV for plotting.
//
//	go run ./examples/phasetrace -bench perlbmk -scale 20000 > trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "perlbmk", "benchmark to trace")
	scale := flag.Int("scale", 20_000, "workload scale divisor")
	limit := flag.Int("n", 0, "intervals to emit (0 = all)")
	flag.Parse()

	spec, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	s := core.NewSession(spec, core.Options{Scale: *scale})
	fmt.Fprintf(os.Stderr, "tracing %s: %d instructions, interval %d\n",
		spec.Name, s.Total(), s.IntervalLen())

	ft := sampling.FullTiming{TraceIntervals: 1 << 20}
	res, err := ft.Run(s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("interval,ipc,tc_invalidations,exceptions,io_ops")
	for i, tr := range res.Trace {
		if *limit > 0 && i >= *limit {
			break
		}
		fmt.Printf("%d,%.4f,%d,%d,%d\n",
			tr.Index, tr.IPC, tr.TCInvalidations, tr.Exceptions, tr.IOOps)
	}

	// Ground truth from the generator, for checking detections.
	fmt.Fprintln(os.Stderr, "planned phases (interval, kernel, transition):")
	for _, ph := range s.Plan().Phases {
		fmt.Fprintf(os.Stderr, "  %6d %-10s %s\n",
			ph.StartApprox/s.IntervalLen(), ph.Kernel, ph.Transition)
	}
}
