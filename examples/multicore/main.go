// Multicore demonstrates the direction the paper's conclusions point
// to: simulating a multi-core consolidation scenario — several guests,
// each on its own core, contending for a shared L2 — with system-level
// Dynamic Sampling deciding when to engage the timing back-ends.
//
//	go run ./examples/multicore -guests gzip,mcf,swim -scale 50000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/smp"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	guests := flag.String("guests", "gzip,mcf", "comma-separated benchmark names to co-run")
	scale := flag.Int("scale", 50_000, "workload scale divisor")
	interval := flag.Uint64("interval", 4000, "sampling interval (instructions per guest)")
	flag.Parse()

	names := strings.Split(*guests, ",")

	// Reference: full detail on every core.
	ref := smp.New(smp.Config{})
	addAll(ref, names, *scale)
	for !ref.Done() {
		refRun(ref)
	}

	// Sampled: system-level Dynamic Sampling (CPU metric, S=300%).
	sys := smp.New(smp.Config{})
	addAll(sys, names, *scale)
	ests, err := sys.DynamicSample(vm.MetricCPU, 300, *interval, 0)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "guest\tfull-detail IPC\tsampled IPC\terror\tsamples")
	for i, g := range ref.Guests() {
		mk := g.Core.Marker()
		full := float64(mk.Instrs) / float64(mk.Cycles)
		e := ests[i].IPC/full - 1
		if e < 0 {
			e = -e
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.2f%%\t%d\n",
			g.Name, full, ests[i].IPC, e*100, ests[i].Samples)
	}
	tw.Flush()
	l2 := ref.SharedL2().Stats()
	fmt.Printf("shared L2: %d accesses, %.1f%% miss (all cores)\n",
		l2.Accesses(), l2.MissRate()*100)
}

func addAll(sys *smp.System, names []string, scale int) {
	for _, n := range names {
		spec, err := workload.ByName(strings.TrimSpace(n))
		if err != nil {
			log.Fatal(err)
		}
		img, _ := workload.BuildScaled(spec, scale)
		sys.AddGuest(spec.Name, img, spec.ScaledInstr(scale))
	}
}

// refRun advances the reference system one step in full detail.
func refRun(sys *smp.System) {
	sys.RunTimed(1 << 16)
}
