// Policysweep explores the Dynamic Sampling configuration space on one
// benchmark — a miniature of the paper's Figure 5: monitored variable x
// sensitivity x interval length x max_func, each reported as (accuracy
// error, speedup) against full timing.
//
//	go run ./examples/policysweep -bench mcf -scale 10000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "mcf", "benchmark to sweep")
	scale := flag.Int("scale", 10_000, "workload scale divisor")
	flag.Parse()

	spec, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{Scale: *scale}

	base, err := sampling.FullTiming{}.Run(core.NewSession(spec, opts))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: full-timing IPC %.4f\n\n", spec.Name, base.EstIPC)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "configuration\tIPC\terror\tspeedup\tsamples")
	for _, metric := range []vm.Metric{vm.MetricCPU, vm.MetricEXC, vm.MetricIO} {
		for _, sens := range []float64{100, 300, 500} {
			for _, mul := range []uint64{1, 10} {
				for _, maxf := range []int{0, 10} {
					p := sampling.NewDynamic(metric, sens, mul, maxf)
					res, err := p.Run(core.NewSession(spec, opts))
					if err != nil {
						log.Fatal(err)
					}
					fmt.Fprintf(tw, "%s\t%.4f\t%.2f%%\t%.1fx\t%d\n",
						res.Policy, res.EstIPC,
						res.ErrorVs(base)*100, res.Speedup(base), res.Samples)
				}
			}
		}
	}
	tw.Flush()
}
