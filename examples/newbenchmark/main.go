// Newbenchmark shows how to define a custom guest workload from scratch
// with the assembler, run it on the VM, and sample it — the path a user
// takes to study their own phase behaviour rather than the built-in
// SPEC stand-ins.
//
// The program alternates between a compute kernel and a pointer-chasing
// kernel by rewriting its own hot code region (the self-modifying-code
// pattern the VM's translation cache observes), so the CPU metric sees
// its phase changes.
//
//	go run ./examples/newbenchmark
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/sampling"
	"repro/internal/timing"
	"repro/internal/vm"
)

const (
	codeBase  = 0x0001_0000
	hotBase   = 0x0008_0000
	stageBase = 0x1000_0000
	arrayBase = 0x2000_0000
)

// kernel assembles a tiny position-independent loop: compute-heavy when
// memory is false, a dependent load chain when true. r2 holds the
// iteration count; return via r30.
func kernel(memory bool) []uint64 {
	b := asm.NewBuilder(hotBase)
	b.Label("loop")
	if memory {
		// Dependent pseudo-random loads over the array at r15.
		b.I(isa.OpSlli, 13, 4, 2)
		b.R(isa.OpAdd, 4, 4, 13)
		b.I(isa.OpAddi, 4, 4, 17)
		b.R(isa.OpAnd, 13, 4, 16)
		b.I(isa.OpSlli, 13, 13, 3)
		b.R(isa.OpAdd, 13, 13, 15)
		b.Ld(3, 13, 0)
		b.R(isa.OpAdd, 4, 4, 3)
	} else {
		for i := 0; i < 8; i++ {
			b.R(isa.OpAdd, uint8(3+i%4), uint8(3+i%4), uint8(5+i%3))
		}
	}
	b.I(isa.OpAddi, 2, 2, -1)
	b.Br(isa.OpBne, 2, 0, "loop")
	b.Jalr(0, 30, 0)
	return b.Words()
}

func buildProgram() *asm.Image {
	compute := kernel(false)
	memory := kernel(true)
	data := asm.NewDataSeg(stageBase)
	stageA := data.Alloc("compute", uint64(len(compute))*8, 8)
	for i, w := range compute {
		data.SetWord(stageA+uint64(i)*8, w)
	}
	stageB := data.Alloc("memory", uint64(len(memory))*8, 8)
	for i, w := range memory {
		data.SetWord(stageB+uint64(i)*8, w)
	}

	c := asm.NewBuilder(codeBase)
	c.Jmp("main")
	// copy(r20 -> r21, r22 words), link r23
	c.Label("copy")
	c.Ld(24, 20, 0)
	c.St(24, 21, 0)
	c.I(isa.OpAddi, 20, 20, 8)
	c.I(isa.OpAddi, 21, 21, 8)
	c.I(isa.OpAddi, 22, 22, -1)
	c.Br(isa.OpBne, 22, 0, "copy")
	c.Jalr(0, 23, 0)

	c.Label("main")
	c.Movi(15, arrayBase)
	c.Movi(16, 1<<10-1) // 8 KB working set
	c.Movi(28, hotBase)
	// Ten alternating phases.
	for phase := 0; phase < 10; phase++ {
		stage, words := stageA, len(compute)
		if phase%2 == 1 {
			stage, words = stageB, len(memory)
		}
		c.Movi(20, int64(stage))
		c.Movi(21, hotBase)
		c.Movi(22, int64(words))
		c.Jal(23, "copy")
		c.Movi(10, int64(phase))
		c.Sys(isa.SysPhaseMark)
		c.Movi(2, 60_000)
		c.Jalr(30, 28, 0)
	}
	c.Movi(10, 0)
	c.Sys(isa.SysExit)

	img := &asm.Image{Entry: codeBase}
	img.AddSegment(codeBase, c.Words())
	img.Segments = append(img.Segments, data.Segments()...)
	return img
}

func main() {
	img := buildProgram()

	// Direct use of the substrate: run functionally first.
	m := vm.New(vm.Config{})
	m.Load(img)
	total := m.RunToCompletion(0, nil)
	st := m.Stats()
	fmt.Printf("custom program: %d instructions, %d phase marks, %d TC invalidations\n",
		total, len(m.PhaseLog()), st.TCInvalidations)

	// Full timing for reference.
	fullVM := vm.New(vm.Config{})
	fullVM.Load(img)
	coreModel := timing.NewCore(timing.DefaultConfig())
	fullVM.RunToCompletion(0, coreModel)
	mk := coreModel.Marker()
	fullIPC := float64(mk.Instrs) / float64(mk.Cycles)
	fmt.Printf("full timing: IPC %.4f over %d cycles\n", fullIPC, mk.Cycles)

	// Dynamic Sampling by hand over the same image: monitor the CPU
	// statistic between fixed intervals, timing only after changes.
	const interval = 20_000
	dsVM := vm.New(vm.Config{})
	dsVM.Load(img)
	dsCore := timing.NewCore(timing.DefaultConfig())
	var est sampling.Estimator
	prev, havePrev := uint64(0), false
	prevStats := dsVM.Stats()
	samples, timedNext := 0, false
	for !dsVM.Halted() {
		if timedNext {
			dsVM.Run(interval, dsCore) // detailed warm-up
			from := dsCore.Marker()
			n := dsVM.Run(interval, dsCore)
			est.Sample(timing.IPC(from, dsCore.Marker()), n)
			samples++
			timedNext = false
		} else if dsVM.Run(interval, nil) == 0 {
			break
		} else {
			est.Functional(interval)
		}
		delta := dsVM.Stats().Sub(prevStats)
		prevStats = dsVM.Stats()
		v := delta.TCInvalidations
		if havePrev {
			den := prev
			if den == 0 {
				den = 1
			}
			diff := int64(v) - int64(prev)
			if diff < 0 {
				diff = -diff
			}
			// This program's kernels are tiny (one or two translated
			// blocks), so transitions only evict a couple of blocks:
			// a lower sensitivity than the SPEC suite's 300% is the
			// right choice here — picking the threshold to match the
			// workload is part of using Dynamic Sampling.
			if float64(diff)/float64(den)*100 > 100 {
				timedNext = true
			}
		}
		prev, havePrev = v, true
	}
	fmt.Printf("dynamic sampling: IPC %.4f from %d samples (error %.2f%%)\n",
		est.IPC(), samples, (est.IPC()/fullIPC-1)*100)
	if samples == 0 {
		log.Fatal("no phase changes detected; sensitivity too high for this workload")
	}
}
